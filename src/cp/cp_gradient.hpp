// Gradient-based CP decomposition (CP-OPT style): the paper's Section II-A
// notes that gradient algorithms, like ALS, are bottlenecked by MTTKRP —
// here by an *all-modes* MTTKRP per iteration, since the gradient with
// respect to every factor is needed at once:
//
//   grad_n f = A^(n) * Gamma^(n) - B^(n),
//   Gamma^(n) = Hadamard_{k != n} (A^(k)' A^(k)),   B^(n) = mode-n MTTKRP,
//
// for f(A) = 1/2 ||X - [[A^(1), ..., A^(N)]]||_F^2. The all-modes MTTKRP is
// computed with the dimension tree (src/mttkrp/dim_tree.hpp), exercising the
// multi-MTTKRP reuse the paper's Section VII points to.
//
// The optimizer is plain gradient descent with Armijo backtracking — simple
// and robust; the point is the kernel, not the optimizer.
#pragma once

#include <functional>

#include "src/cp/cp_als.hpp"

namespace mtk {

struct CpGradOptions {
  index_t rank = 1;
  int max_iterations = 100;
  double tolerance = 1e-6;     // stop when relative gradient norm is below
  double initial_step = 1.0;   // first trial step per iteration
  double backtrack = 0.5;      // step shrink factor
  double armijo = 1e-4;        // sufficient-decrease coefficient
  std::uint64_t seed = 42;
  // Backend/schedule for the per-evaluation all-modes MTTKRP (sparse
  // storage: fused multi-tree walk unless sparse_algo forces kCoo).
  MttkrpOptions mttkrp;
  // Randomized execution: every gradient evaluation's per-mode MTTKRPs are
  // leverage-sampled (sketch.refresh_every evaluations share one draw, so
  // each line search optimizes a fixed sketched objective). The reported
  // final_objective/final_fit are re-evaluated exactly. Dense storage
  // ignores the knob (the dimension tree already reuses partials).
  SketchOptions sketch;
};

struct CpGradIterate {
  int iteration = 0;
  double objective = 0.0;
  double gradient_norm = 0.0;
  double step = 0.0;
};

struct CpGradResult {
  CpModel model;  // lambda is all-ones; weights stay folded into factors
  std::vector<CpGradIterate> trace;
  double final_objective = 0.0;
  double final_fit = 0.0;  // 1 - ||X - model|| / ||X||
  int iterations = 0;
  bool converged = false;
};

// One gradient evaluation's ingredients: the factor Grams and the
// all-modes MTTKRP outputs at a given factor block. The optimizer core is
// parameterized over how these are produced, so the sequential driver
// (dimension tree / native sparse kernels) and the simulated-parallel
// driver (par_mttkrp_all_modes + distributed Grams, charging a Machine)
// share the optimizer verbatim — and therefore iterate identically.
struct GradEval {
  std::vector<Matrix> grams;    // grams[k] = A^(k)' A^(k)
  std::vector<Matrix> mttkrps;  // mttkrps[k] = B^(k)
};

using GradEvalFn = std::function<GradEval(const std::vector<Matrix>&)>;

// The shared optimizer: plain gradient descent with Armijo backtracking on
// the full factor block, evaluating objective/gradients only through
// `evaluate`. `norm_x` is the input's Frobenius norm (must be > 0).
CpGradResult cp_gradient_descent_core(const shape_t& dims, double norm_x,
                                      const CpGradOptions& opts,
                                      const GradEvalFn& evaluate);

// Storage-polymorphic driver: dense storage computes the all-modes MTTKRP
// with the dimension tree; sparse storage (COO/CSF) runs the fused
// multi-tree CSF walk on the handle's cached tree — every evaluation
// (including rejected line-search trials) reuses the same tree, so the
// whole descent performs at most one CSF compression.
CpGradResult cp_gradient_descent(const StoredTensor& x,
                                 const CpGradOptions& opts);
// Convenience overloads wrapping the storage in a borrowing view.
CpGradResult cp_gradient_descent(const DenseTensor& x,
                                 const CpGradOptions& opts);
CpGradResult cp_gradient_descent(const SparseTensor& x,
                                 const CpGradOptions& opts);
CpGradResult cp_gradient_descent(const CsfTensor& x,
                                 const CpGradOptions& opts);

}  // namespace mtk
