// CP-ALS: the alternating-least-squares CP decomposition driver that
// motivates MTTKRP (Section II-A). Each inner step updates one factor by
// solving the normal equations A^(n) * V = M, where M is the mode-n MTTKRP
// and V is the Hadamard product of the other factors' Gram matrices. The
// MTTKRP backend is pluggable — both the dense algorithm (MttkrpOptions) and
// the storage format (dense / COO / CSF via StoredTensor) — demonstrating
// that every kernel behind src/mttkrp/dispatch.hpp is a drop-in bottleneck.
//
// The driver never materializes the residual tensor: the fit is evaluated
// from ||X||^2 + ||model||^2 - 2 <X, model>, where the model norm comes from
// the factor-Gram identity (cp_model_norm_squared) and the inner product
// from the last MTTKRP output — so sparse inputs stay sparse throughout.
#pragma once

#include <cstdint>
#include <vector>

#include "src/mttkrp/dispatch.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/sketch/krp_sample.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

struct CpModel {
  std::vector<Matrix> factors;  // A^(k), each I_k x R
  std::vector<double> lambda;   // column weights

  index_t rank() const {
    return factors.empty() ? 0 : factors.front().cols();
  }
  DenseTensor reconstruct() const;
};

struct CpAlsOptions {
  index_t rank = 1;
  int max_iterations = 50;
  double tolerance = 1e-8;  // stop when the fit improves by less than this
  MttkrpOptions mttkrp;     // backend used for every MTTKRP call
  std::uint64_t seed = 42;  // factor initialization
  // Randomized (kSampled) execution: when enabled, every factor update
  // solves the leverage-sampled normal equations (sampled MTTKRP +
  // sketched KRP Gram) instead of the exact ones, re-drawing the samples
  // every `sketch.refresh_every` sweeps; dense storage uses the Gaussian
  // KRP projection. Per-sweep trace fits are then sampled estimates; the
  // reported final_fit is always re-evaluated exactly (one exact MTTKRP).
  SketchOptions sketch;
  // Warm start: when non-null, iteration begins from a copy of this model
  // instead of the random initialization (`seed` is then unused). The model
  // must match the input — one factor per mode with matching row counts —
  // and its rank must equal `rank`; a missing/short lambda is reset to
  // all-ones. Borrowed: the caller keeps the model alive through the call.
  const CpModel* initial = nullptr;
};

struct CpAlsIterate {
  int iteration = 0;
  double fit = 0.0;         // 1 - ||X - model|| / ||X||
  double fit_change = 0.0;
};

struct CpAlsResult {
  CpModel model;
  std::vector<CpAlsIterate> trace;
  double final_fit = 0.0;
  int iterations = 0;
  bool converged = false;
  // Sampled runs only: leverage-CDF rebuilds performed by the per-mode
  // sampler cache. Stays well below redraws x (n-1) per sweep because a
  // factor's CDF is recomputed only after that factor actually changed.
  index_t leverage_rebuilds = 0;
};

// Storage-polymorphic driver; runs unmodified on dense, COO, or CSF input.
CpAlsResult cp_als(const StoredTensor& x, const CpAlsOptions& opts);
// Convenience overloads wrapping the storage in a borrowing view.
CpAlsResult cp_als(const DenseTensor& x, const CpAlsOptions& opts);
CpAlsResult cp_als(const SparseTensor& x, const CpAlsOptions& opts);
CpAlsResult cp_als(const CsfTensor& x, const CpAlsOptions& opts);

// The model-norm trick shared by the sequential and parallel drivers:
// ||model||^2 = sum_{r,s} lambda_r lambda_s prod_k G_k(r,s).
double cp_model_norm_squared(const std::vector<Matrix>& grams,
                             const std::vector<double>& lambda);

// <X, model> = sum_{i_n, r} lambda_r * A^(n)(i_n, r) * M(i_n, r), where M is
// the mode-n MTTKRP against the *other* current factors.
double cp_inner_product(const Matrix& mttkrp_result, const Matrix& factor,
                        const std::vector<double>& lambda);

}  // namespace mtk
