// Parallel CP-ALS on the simulated distributed machine: every per-mode
// MTTKRP runs through Algorithm 3 (stationary tensor, Section V-C) on a
// persistent machine, so the communication of a full decomposition can be
// measured. Storage-polymorphic like the underlying driver — a sparse input
// (COO or CSF) is partitioned once per MTTKRP by coordinate blocks and the
// local kernels are the native sparse ones, while the collective traffic is
// the same dense-factor traffic Algorithm 3 always moves. The Gram matrices
// are formed by local partial Grams followed by a machine-wide All-Reduce of
// R^2 words (this traffic is *extra* relative to the single-MTTKRP analyses;
// the paper's Section VII notes that multi-MTTKRP optimizations are future
// work, and the benchmark reports the breakdown so the MTTKRP share is
// visible).
#pragma once

#include "src/cp/cp_als.hpp"
#include "src/parsim/distribution.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/planner/planner.hpp"

namespace mtk {

struct ParCpAlsOptions {
  index_t rank = 1;
  int max_iterations = 20;
  double tolerance = 1e-8;
  std::vector<int> grid;    // N-way processor grid for Algorithm 3
  std::uint64_t seed = 42;
  // Sparse coordinate partition (ignored for dense input): kBlock matches
  // the dense layout, kMediumGrained balances nonzeros per process.
  SparsePartitionScheme partition = SparsePartitionScheme::kBlock;
  // Per-phase collective schedule (bucket ring vs recursive doubling/
  // halving); replaced by the planner's choice when autotuning.
  CollectiveSchedule collectives = CollectiveKind::kBucket;
  // Execution backend: kSim counts words on the counting machine, kThreads
  // runs the same schedules for real on P rank threads (and still counts).
  TransportKind transport = TransportKind::kSim;
  // Local sparse-kernel schedule; replaced by the planner's choice when
  // autotuning. kAuto keeps the per-call heuristic.
  SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto;
  // Autotune: let the planner (through the global plan cache) pick the
  // grid, partition scheme, sparse backend, and collective schedule for
  // `procs` processors (or prod(grid) when `grid` is set, whose extents
  // are then ignored). The chosen plan is reported in ParCpAlsResult::plan.
  bool autotune = false;
  int procs = 0;
  // Machine-balance knobs forwarded to PlannerOptions (γ/β and α/β); a
  // measured calibration supersedes both.
  double flop_word_ratio = 0.0;
  double latency_word_ratio = 0.0;
  Calibration machine;
  // Caller-owned transport to run on instead of a fresh one of `transport`
  // kind (which is then ignored, but must have grid_size(grid) ranks). Lets
  // the CLI wrap the run in a CountingTransport for --verify-counts and read
  // phase records for the drift report. Borrowed; must outlive the call.
  Transport* transport_ptr = nullptr;
};

struct ParCpAlsIterate {
  int iteration = 0;
  double fit = 0.0;
  index_t mttkrp_words_max = 0;  // bottleneck words in MTTKRP collectives
  index_t gram_words_max = 0;    // bottleneck words in Gram All-Reduces
  index_t messages_max = 0;      // bottleneck messages, whole iteration
};

struct ParCpAlsResult {
  CpModel model;
  std::vector<ParCpAlsIterate> trace;
  double final_fit = 0.0;
  int iterations = 0;
  bool converged = false;
  index_t total_mttkrp_words_max = 0;
  index_t total_gram_words_max = 0;
  index_t total_messages_max = 0;
  // The planner's choice when ParCpAlsOptions::autotune was set.
  bool autotuned = false;
  ExecutionPlan plan;
  // Which backend executed, and its measured wall-clock split (collective
  // time vs local-kernel time; both zero-cost simulated phases still take
  // real time on kSim, so the split is meaningful on either backend).
  TransportKind transport = TransportKind::kSim;
  double comm_seconds = 0.0;
  double compute_seconds = 0.0;
};

// Storage-polymorphic driver; runs unmodified on dense, COO, or CSF input.
ParCpAlsResult par_cp_als(const StoredTensor& x, const ParCpAlsOptions& opts);
// Convenience overloads wrapping the storage in a borrowing view.
ParCpAlsResult par_cp_als(const DenseTensor& x, const ParCpAlsOptions& opts);
ParCpAlsResult par_cp_als(const SparseTensor& x, const ParCpAlsOptions& opts);
ParCpAlsResult par_cp_als(const CsfTensor& x, const ParCpAlsOptions& opts);

}  // namespace mtk
