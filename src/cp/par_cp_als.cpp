#include "src/cp/par_cp_als.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/obs/trace.hpp"
#include "src/parsim/collectives.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/tensor/csf.hpp"
#include "src/parsim/distribution.hpp"
#include "src/parsim/par_common.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/block.hpp"

namespace mtk {

namespace {

std::vector<double> normalize_columns(Matrix& a) {
  std::vector<double> norms = a.column_norms();
  for (double& v : norms) {
    if (v == 0.0) v = 1.0;
  }
  a.scale_columns_inv(norms);
  return norms;
}

}  // namespace

ParCpAlsResult par_cp_als(const DenseTensor& x, const ParCpAlsOptions& opts) {
  return par_cp_als(StoredTensor::dense_view(x), opts);
}

ParCpAlsResult par_cp_als(const SparseTensor& x, const ParCpAlsOptions& opts) {
  return par_cp_als(StoredTensor::coo_view(x), opts);
}

ParCpAlsResult par_cp_als(const CsfTensor& x, const ParCpAlsOptions& opts) {
  return par_cp_als(StoredTensor::csf_view(x), opts);
}

ParCpAlsResult par_cp_als(const StoredTensor& x, const ParCpAlsOptions& opts) {
  const int n = x.order();
  MTK_CHECK(n >= 2, "par_cp_als requires an order >= 2 tensor");
  MTK_CHECK(opts.rank >= 1, "cp rank must be >= 1, got ", opts.rank);

  if (opts.autotune) {
    const int procs = opts.grid.empty() ? opts.procs : grid_size(opts.grid);
    MTK_CHECK(procs >= 1,
              "par_cp_als autotune needs procs (or a grid whose product "
              "sets it), got ", procs);
    PlannerOptions popts;
    popts.procs = procs;
    popts.workload = PlanWorkload::kCpAls;
    popts.flop_word_ratio = opts.flop_word_ratio;
    popts.latency_word_ratio = opts.latency_word_ratio;
    popts.machine = opts.machine;
    popts.reuse_count = std::max(1, opts.max_iterations) * n;
    const std::shared_ptr<const PlanReport> report =
        PlanCache::global().get_or_plan(x, opts.rank, popts);
    const ExecutionPlan& plan = report->best();

    ParCpAlsOptions tuned = opts;
    tuned.autotune = false;
    tuned.grid = plan.grid;
    tuned.partition = plan.scheme;
    tuned.collectives = plan.collectives;
    // The bug this fixes: the planner's kernel_variant used to be dropped
    // here, so autotuned runs always fell back to the per-call heuristic.
    tuned.kernel_variant = plan.kernel_variant;

    // Honor the planner's backend choice: sparse storage converts once,
    // here, so the per-rank local kernels run in the recommended format.
    ParCpAlsResult result;
    if (plan.backend != x.format() &&
        x.format() != StorageFormat::kDense) {
      if (plan.backend == StorageFormat::kCsf) {
        const CsfTensor csf = CsfTensor::from_coo(x.as_coo());
        result = par_cp_als(StoredTensor::csf_view(csf), tuned);
      } else {
        const SparseTensor coo = x.as_csf().to_coo();
        result = par_cp_als(StoredTensor::coo_view(coo), tuned);
      }
    } else {
      result = par_cp_als(x, tuned);
    }
    result.autotuned = true;
    result.plan = plan;
    return result;
  }

  MTK_CHECK(static_cast<int>(opts.grid.size()) == n,
            "par_cp_als needs an N-way grid, got ", opts.grid.size(),
            " extents for order ", n);

  std::unique_ptr<Transport> transport_owner;
  if (opts.transport_ptr == nullptr) {
    transport_owner = make_transport(opts.transport, grid_size(opts.grid));
  } else {
    MTK_CHECK(opts.transport_ptr->num_ranks() == grid_size(opts.grid),
              "par_cp_als: caller transport has ",
              opts.transport_ptr->num_ranks(), " ranks, grid needs ",
              grid_size(opts.grid));
  }
  Transport& transport =
      opts.transport_ptr != nullptr ? *opts.transport_ptr : *transport_owner;

  // Sparse inputs are planned once — the distribution (and, for CSF, the
  // per-rank one-tree-per-mode forest) depends only on (tensor, grid,
  // scheme), so every per-mode MTTKRP of every iteration reuses it instead
  // of re-bucketing the nonzeros and re-compressing the trees.
  const bool dense_input = x.format() == StorageFormat::kDense;
  StationarySparsePlan plan;
  if (!dense_input) {
    plan = plan_stationary_sparse(x, opts.grid, opts.partition);
  }

  Rng rng(opts.seed);
  ParCpAlsResult result;
  result.model.factors.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    result.model.factors.push_back(
        Matrix::random_uniform(x.dim(k), opts.rank, rng));
  }
  result.model.lambda.assign(static_cast<std::size_t>(opts.rank), 1.0);

  std::vector<Matrix> grams(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const index_t before = transport.max_words_moved();
    const index_t before_msgs = transport.max_messages_sent();
    grams[static_cast<std::size_t>(k)] = distributed_gram(
        transport, result.model.factors[static_cast<std::size_t>(k)],
        opts.collectives.gram);
    // The N initialization Grams are charged to the total (they precede
    // iteration 1, so no trace entry carries them).
    result.total_gram_words_max += transport.max_words_moved() - before;
    result.total_messages_max += transport.max_messages_sent() - before_msgs;
  }

  const double norm_x = x.frobenius_norm();
  MTK_CHECK(norm_x > 0.0, "par_cp_als: input tensor is identically zero");

  double previous_fit = 0.0;
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    Span sweep_span(SpanCategory::kSweep, "par_cp_als sweep");
    if (sweep_span.enabled()) {
      sweep_span.arg("iter", iter);
      sweep_span.arg("ranks", transport.num_ranks());
    }
    index_t mttkrp_words_iter = 0;
    index_t gram_words_iter = 0;
    const index_t msgs_before_iter = transport.max_messages_sent();
    Matrix last_mttkrp;
    for (int mode = 0; mode < n; ++mode) {
      index_t before = transport.max_words_moved();
      ParMttkrpResult mr =
          dense_input
              ? par_mttkrp_stationary(transport, x, result.model.factors,
                                      mode, opts.grid, opts.collectives,
                                      opts.partition, opts.kernel_variant)
              : par_mttkrp_stationary(transport, x, result.model.factors,
                                      mode, opts.grid, plan, opts.collectives,
                                      opts.kernel_variant);
      mttkrp_words_iter += transport.max_words_moved() - before;

      Matrix v(opts.rank, opts.rank, 0.0);
      bool first = true;
      for (int k = 0; k < n; ++k) {
        if (k == mode) continue;
        if (first) {
          v = grams[static_cast<std::size_t>(k)];
          first = false;
        } else {
          hadamard_inplace(v, grams[static_cast<std::size_t>(k)]);
        }
      }

      Matrix a = solve_spd_right(v, mr.b);
      result.model.lambda = normalize_columns(a);
      result.model.factors[static_cast<std::size_t>(mode)] = std::move(a);

      before = transport.max_words_moved();
      grams[static_cast<std::size_t>(mode)] = distributed_gram(
          transport, result.model.factors[static_cast<std::size_t>(mode)],
          opts.collectives.gram);
      gram_words_iter += transport.max_words_moved() - before;

      if (mode == n - 1) last_mttkrp = std::move(mr.b);
    }

    const double norm_model_sq =
        cp_model_norm_squared(grams, result.model.lambda);
    const double inner = cp_inner_product(
        last_mttkrp, result.model.factors[static_cast<std::size_t>(n - 1)],
        result.model.lambda);
    const double residual_sq =
        std::max(0.0, norm_x * norm_x + norm_model_sq - 2.0 * inner);
    const double fit = 1.0 - std::sqrt(residual_sq) / norm_x;

    const index_t messages_iter =
        transport.max_messages_sent() - msgs_before_iter;
    result.trace.push_back(
        {iter, fit, mttkrp_words_iter, gram_words_iter, messages_iter});
    result.final_fit = fit;
    result.iterations = iter;
    result.total_mttkrp_words_max += mttkrp_words_iter;
    result.total_gram_words_max += gram_words_iter;
    result.total_messages_max += messages_iter;
    if (iter > 1 && std::fabs(fit - previous_fit) < opts.tolerance) {
      result.converged = true;
      break;
    }
    previous_fit = fit;
  }
  result.transport = transport.kind();
  result.comm_seconds = transport.comm_seconds();
  result.compute_seconds = transport.compute_seconds();
  return result;
}

}  // namespace mtk
