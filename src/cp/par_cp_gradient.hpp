// Parallel gradient-based CP decomposition (CP-OPT style) on the simulated
// distributed machine — the all-modes workload the planner's
// PlanWorkload::kAllModes models. Each gradient (and each Armijo trial)
// needs every B^(n) against the *same* factor block, so the inner kernel is
// par_mttkrp_all_modes: the factor All-Gathers are paid once and shared by
// all N local MTTKRPs, and the N outputs are Reduce-Scattered — the
// Section VII communication-reuse pattern, here exercised end-to-end inside
// an optimizer. Gram matrices are formed by per-rank partial Grams plus a
// machine-wide All-Reduce (distributed_gram), so the counters cover the
// whole iteration.
//
// The optimizer itself is cp_gradient_descent_core — the exact code the
// sequential driver runs — evaluated through a machine-charging callback,
// so sequential and parallel runs produce identical iterates while the
// machine records what the parallel execution would move.
//
// With `autotune`, plan_cp_gradient (through the global plan cache) picks
// the grid, partition scheme, backend, and per-phase collective schedule.
#pragma once

#include "src/cp/cp_gradient.hpp"
#include "src/parsim/collective_variants.hpp"
#include "src/parsim/distribution.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/planner/planner.hpp"

namespace mtk {

struct ParCpGradOptions {
  CpGradOptions descent;  // rank, iteration/tolerance, line-search, seed
  std::vector<int> grid;  // N-way processor grid
  SparsePartitionScheme partition = SparsePartitionScheme::kBlock;
  // Per-phase collective schedule; replaced by the plan when autotuning.
  CollectiveSchedule collectives = CollectiveKind::kBucket;
  // Execution backend (counting simulator vs real rank threads).
  TransportKind transport = TransportKind::kSim;
  // Local sparse-kernel schedule; replaced by the plan when autotuning.
  SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto;
  // Autotune through plan_cp_gradient + the global plan cache.
  bool autotune = false;
  int procs = 0;
  double flop_word_ratio = 0.0;
  double latency_word_ratio = 0.0;
  Calibration machine;
};

struct ParCpGradResult {
  CpGradResult descent;  // model, trace, objective, fit, convergence
  // Whole-run communication (initial evaluation + every accepted and
  // rejected line-search trial; bottleneck-rank metrics).
  index_t total_words_max = 0;
  index_t total_messages_max = 0;
  int evaluations = 0;  // gradient evaluations the machine was charged for
  bool autotuned = false;
  ExecutionPlan plan;
  // Which backend executed, and its measured wall-clock split.
  TransportKind transport = TransportKind::kSim;
  double comm_seconds = 0.0;
  double compute_seconds = 0.0;
};

ParCpGradResult par_cp_gradient(const StoredTensor& x,
                                const ParCpGradOptions& opts);
// Convenience overloads wrapping the storage in a borrowing view.
ParCpGradResult par_cp_gradient(const DenseTensor& x,
                                const ParCpGradOptions& opts);
ParCpGradResult par_cp_gradient(const SparseTensor& x,
                                const ParCpGradOptions& opts);
ParCpGradResult par_cp_gradient(const CsfTensor& x,
                                const ParCpGradOptions& opts);

}  // namespace mtk
