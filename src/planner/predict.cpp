#include "src/planner/predict.hpp"

#include <algorithm>
#include <numeric>

#include "src/costmodel/grid_search.hpp"
#include "src/parsim/grid.hpp"
#include "src/parsim/par_common.hpp"
#include "src/support/check.hpp"
#include "src/support/math_util.hpp"

namespace mtk {

const char* to_string(ParAlgo algo) {
  switch (algo) {
    case ParAlgo::kStationary: return "stationary";
    case ParAlgo::kGeneral: return "general";
    case ParAlgo::kAllModes: return "all-modes";
  }
  return "unknown";
}

namespace {

// Per-rank accumulators for one replayed schedule; the bottleneck rank (by
// total words) supplies the reported word breakdown, while the message
// bottleneck is the max over all ranks (the two can differ when a rank
// sits in small-word, many-round groups).
struct RankAccum {
  std::vector<double> tensor, factor, output, gram;
  std::vector<double> tensor_m, factor_m, output_m, gram_m;

  explicit RankAccum(int p)
      : tensor(static_cast<std::size_t>(p), 0.0),
        factor(static_cast<std::size_t>(p), 0.0),
        output(static_cast<std::size_t>(p), 0.0),
        gram(static_cast<std::size_t>(p), 0.0),
        tensor_m(static_cast<std::size_t>(p), 0.0),
        factor_m(static_cast<std::size_t>(p), 0.0),
        output_m(static_cast<std::size_t>(p), 0.0),
        gram_m(static_cast<std::size_t>(p), 0.0) {}

  double total(std::size_t r) const {
    return tensor[r] + factor[r] + output[r] + gram[r];
  }
  double total_msgs(std::size_t r) const {
    return tensor_m[r] + factor_m[r] + output_m[r] + gram_m[r];
  }

  CommPrediction finalize() const {
    std::size_t best = 0;
    double max_msgs = total_msgs(0);
    for (std::size_t r = 1; r < tensor.size(); ++r) {
      if (total(r) > total(best)) best = r;
      max_msgs = std::max(max_msgs, total_msgs(r));
    }
    CommPrediction c;
    c.words = total(best);
    c.messages = max_msgs;
    c.tensor_words = tensor[best];
    c.factor_words = factor[best];
    c.output_words = output[best];
    c.gram_words = gram[best];
    c.tensor_messages = tensor_m[best];
    c.factor_messages = factor_m[best];
    c.output_messages = output_m[best];
    c.gram_messages = gram_m[best];
    c.exact = true;
    return c;
  }
};

index_t chunk_len(index_t total, int q, int i) {
  return flat_chunk(total, q, i).length();
}

// Words moved (sent + received) and messages sent by one group position in
// one collective, mirroring the dispatcher's algorithm choice exactly.
struct Moved {
  double words = 0.0;
  double msgs = 0.0;
};

// Recursive-doubling All-Gather: at round dist, position i sends its whole
// subcube {i ^ m : m < dist} and receives the partner's. Summing the flat
// chunk sizes over those subcubes replays all_gather_doubling's counters.
double doubling_moved(index_t w, int q, int pos) {
  double moved = 0.0;
  for (int dist = 1; dist < q; dist *= 2) {
    const int own_lo = pos & ~(dist - 1);
    const int partner_lo = (pos ^ dist) & ~(dist - 1);
    for (int m = 0; m < dist; ++m) {
      moved += static_cast<double>(chunk_len(w, q, own_lo + m)) +
               static_cast<double>(chunk_len(w, q, partner_lo + m));
    }
  }
  return moved;
}

// Ring bucket All-Gather of W words over q members: position i sends every
// chunk except c_{(i+1) mod q} and receives every chunk except c_i.
Moved ag_replay(index_t w, int q, int pos, CollectiveKind kind) {
  if (q <= 1) return {};
  if (kind == CollectiveKind::kRecursive &&
      recursive_all_gather_applies(q)) {
    return {doubling_moved(w, q, pos),
            static_cast<double>(collective_rounds(q, true))};
  }
  return {2.0 * static_cast<double>(w) -
              static_cast<double>(chunk_len(w, q, pos)) -
              static_cast<double>(chunk_len(w, q, (pos + 1) % q)),
          static_cast<double>(q - 1)};
}

// Ring bucket Reduce-Scatter: position i sends every chunk except c_i and
// receives every chunk except c_{(i-1) mod q}. The recursive-halving
// fallback rule (uniform flat chunks <=> w divisible by q) matches
// reduce_scatter_dispatch; halving moves the same 2W(q-1)/q words.
Moved rs_replay(index_t w, int q, int pos, CollectiveKind kind) {
  if (q <= 1) return {};
  if (kind == CollectiveKind::kRecursive &&
      is_pow2(static_cast<index_t>(q)) && w % q == 0) {
    return {2.0 * static_cast<double>(w) * static_cast<double>(q - 1) /
                static_cast<double>(q),
            static_cast<double>(collective_rounds(q, true))};
  }
  return {2.0 * static_cast<double>(w) -
              static_cast<double>(chunk_len(w, q, pos)) -
              static_cast<double>(chunk_len(w, q, (pos - 1 + q) % q)),
          static_cast<double>(q - 1)};
}

// Position of a rank within group_fixing(fixed, rank): column-major
// linearization of its varying coordinates (first varying dimension
// fastest), mirroring ProcessorGrid::group_fixing's enumeration.
int group_position(const ProcessorGrid& grid, const std::vector<int>& coords,
                   const std::vector<bool>& fixed) {
  int pos = 0;
  int stride = 1;
  for (int k = 0; k < grid.ndims(); ++k) {
    if (fixed[static_cast<std::size_t>(k)]) continue;
    pos += coords[static_cast<std::size_t>(k)] * stride;
    stride *= grid.extent(k);
  }
  return pos;
}

void check_problem(const PredictProblem& p) {
  check_shape(p.dims);
  MTK_CHECK(p.dims.size() >= 2, "predictor requires order >= 2");
  MTK_CHECK(p.rank >= 1, "rank must be >= 1, got ", p.rank);
}

void check_n_way_grid(const PredictProblem& p, const std::vector<int>& grid) {
  MTK_CHECK(grid.size() == p.dims.size(), "expected an N-way grid, got ",
            grid.size(), " extents for order ", p.dims.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    MTK_CHECK(grid[k] >= 1 && grid[k] <= p.dims[k], "grid extent ", grid[k],
              " out of range [1, ", p.dims[k], "] in mode ", k);
  }
}

// Mode partitions the drivers would use: uniform ranges for kBlock (and for
// dense storage), nonzero-balanced boundaries for kMediumGrained.
std::vector<std::vector<Range>> planned_partitions(
    const PredictProblem& p, const std::vector<int>& extents,
    SparsePartitionScheme scheme) {
  if (p.format == StorageFormat::kDense ||
      scheme == SparsePartitionScheme::kBlock || p.coo == nullptr) {
    std::vector<std::vector<Range>> parts(extents.size());
    for (std::size_t k = 0; k < extents.size(); ++k) {
      parts[k] = block_partition(p.dims[k], extents[k]);
    }
    return parts;
  }
  return sparse_mode_partitions(*p.coo, extents, scheme);
}

// Algorithm 3 / all-modes replay on an N-way grid. For kStationary only the
// non-output factors are gathered and only the output mode is
// reduce-scattered; the all-modes driver gathers every factor once and
// reduce-scatters every mode.
void accumulate_stationary(RankAccum& acc, const ProcessorGrid& grid,
                           const std::vector<std::vector<Range>>& parts,
                           index_t rank_r, int mode, bool all_modes,
                           const CollectiveSchedule& sched) {
  const int n = grid.ndims();
  const int p = grid.size();
  std::vector<bool> fixed(static_cast<std::size_t>(n), false);
  for (int r = 0; r < p; ++r) {
    const std::vector<int> coords = grid.coords(r);
    for (int k = 0; k < n; ++k) {
      const int q = p / grid.extent(k);
      fixed.assign(static_cast<std::size_t>(n), false);
      fixed[static_cast<std::size_t>(k)] = true;
      const int pos = group_position(grid, coords, fixed);
      const index_t w = checked_mul(
          parts[static_cast<std::size_t>(k)]
               [static_cast<std::size_t>(coords[static_cast<std::size_t>(k)])]
                   .length(),
          rank_r);
      if (all_modes || k != mode) {
        const Moved m = ag_replay(w, q, pos, sched.factor);
        acc.factor[static_cast<std::size_t>(r)] += m.words;
        acc.factor_m[static_cast<std::size_t>(r)] += m.msgs;
      }
      if (all_modes || k == mode) {
        const Moved m = rs_replay(w, q, pos, sched.output);
        acc.output[static_cast<std::size_t>(r)] += m.words;
        acc.output_m[static_cast<std::size_t>(r)] += m.msgs;
      }
    }
  }
}

// Algorithm 4 replay on an (N+1)-way grid. fiber_words[f] is the tensor
// All-Gather payload of P0-fiber f (dense block entries, or N+1 words per
// nonzero for sparse storage).
void accumulate_general(RankAccum& acc, const ProcessorGrid& grid,
                        const ProcessorGrid& sub_grid,
                        const std::vector<std::vector<Range>>& parts,
                        const std::vector<Range>& rank_parts,
                        const std::vector<index_t>& fiber_words, int mode,
                        const CollectiveSchedule& sched) {
  const int n = grid.ndims() - 1;
  const int p = grid.size();
  const int p0 = grid.extent(0);
  std::vector<bool> fixed(static_cast<std::size_t>(n + 1), false);
  for (int r = 0; r < p; ++r) {
    const std::vector<int> coords = grid.coords(r);
    const std::vector<int> sub_coords(coords.begin() + 1, coords.end());
    const int fiber = sub_grid.rank_of(sub_coords);
    const int c0 = coords[0];

    // Phase 0: tensor All-Gather across the P0-fiber (varying dim 0 only,
    // so the group position is the rank's own c0 coordinate).
    {
      const Moved m = ag_replay(
          fiber_words[static_cast<std::size_t>(fiber)], p0, c0, sched.tensor);
      acc.tensor[static_cast<std::size_t>(r)] += m.words;
      acc.tensor_m[static_cast<std::size_t>(r)] += m.msgs;
    }

    for (int k = 0; k < n; ++k) {
      const int q = p / (p0 * grid.extent(k + 1));
      fixed.assign(static_cast<std::size_t>(n + 1), false);
      fixed[0] = true;
      fixed[static_cast<std::size_t>(k + 1)] = true;
      const int pos = group_position(grid, coords, fixed);
      const index_t w = checked_mul(
          parts[static_cast<std::size_t>(k)]
               [static_cast<std::size_t>(
                    coords[static_cast<std::size_t>(k + 1)])]
                   .length(),
          rank_parts[static_cast<std::size_t>(c0)].length());
      if (k != mode) {
        const Moved m = ag_replay(w, q, pos, sched.factor);
        acc.factor[static_cast<std::size_t>(r)] += m.words;
        acc.factor_m[static_cast<std::size_t>(r)] += m.msgs;
      } else {
        const Moved m = rs_replay(w, q, pos, sched.output);
        acc.output[static_cast<std::size_t>(r)] += m.words;
        acc.output_m[static_cast<std::size_t>(r)] += m.msgs;
      }
    }
  }
}

// Machine-wide Gram All-Reduce of R^2 words (distributed_gram's dispatched
// Reduce-Scatter + All-Gather over all P ranks in rank order; both stages
// consult the fallback rules independently, as all_reduce_dispatch does).
void accumulate_gram(RankAccum& acc, int p, index_t r_squared,
                     const CollectiveSchedule& sched) {
  for (int r = 0; r < p; ++r) {
    const Moved rs = rs_replay(r_squared, p, r, sched.gram);
    const Moved ag = ag_replay(r_squared, p, r, sched.gram);
    acc.gram[static_cast<std::size_t>(r)] += rs.words + ag.words;
    acc.gram_m[static_cast<std::size_t>(r)] += rs.msgs + ag.msgs;
  }
}

// Balanced closed-form estimates (sent+received = 2x the Eq. (14)/(18)
// per-processor sends, with ceil'd block sizes, and the α-side round counts
// from costmodel), used above the per-rank replay cap. Medium-grained
// boundaries are unknown without the nonzero structure, so the same
// index-balanced ranges are assumed; Reduce-Scatter divisibility is taken
// as satisfied (the balanced model's chunks are uniform by construction).
CommPrediction closed_stationary(const PredictProblem& p,
                                 const std::vector<int>& grid, int mode,
                                 bool all_modes,
                                 const CollectiveSchedule& sched) {
  const int n = static_cast<int>(p.dims.size());
  double procs = 1.0;
  for (int e : grid) procs *= static_cast<double>(e);
  CommPrediction c;
  for (int k = 0; k < n; ++k) {
    const double pk = static_cast<double>(grid[static_cast<std::size_t>(k)]);
    const double q = procs / pk;
    const double w = static_cast<double>(
        ceil_div(p.dims[static_cast<std::size_t>(k)],
                 grid[static_cast<std::size_t>(k)]) *
        p.rank);
    const double moved = 2.0 * w * (q - 1.0) / q;
    if (all_modes || k != mode) {
      c.factor_words += moved;
      c.factor_messages += collective_rounds_model(
          q, sched.factor == CollectiveKind::kRecursive);
    }
    if (all_modes || k == mode) {
      c.output_words += moved;
      c.output_messages += collective_rounds_model(
          q, sched.output == CollectiveKind::kRecursive);
    }
  }
  c.words = c.factor_words + c.output_words;
  c.messages = c.factor_messages + c.output_messages;
  return c;
}

CommPrediction closed_general(const PredictProblem& p,
                              const std::vector<int>& grid, int mode,
                              const CollectiveSchedule& sched) {
  const int n = static_cast<int>(p.dims.size());
  double procs = 1.0;
  for (int e : grid) procs *= static_cast<double>(e);
  const double p0 = static_cast<double>(grid[0]);
  const int fibers = static_cast<int>(procs / p0);

  CommPrediction c;
  double tensor_payload;
  if (p.format == StorageFormat::kDense) {
    index_t block = 1;
    for (int k = 0; k < n; ++k) {
      block = checked_mul(block,
                          ceil_div(p.dims[static_cast<std::size_t>(k)],
                                   grid[static_cast<std::size_t>(k + 1)]));
    }
    tensor_payload = static_cast<double>(block);
  } else {
    tensor_payload = static_cast<double>(
        ceil_div(p.nnz, static_cast<index_t>(fibers)) *
        static_cast<index_t>(n + 1));
  }
  c.tensor_words = 2.0 * tensor_payload * (p0 - 1.0) / p0;
  c.tensor_messages = collective_rounds_model(
      p0, sched.tensor == CollectiveKind::kRecursive);

  const index_t rank_block = ceil_div(p.rank, grid[0]);
  for (int k = 0; k < n; ++k) {
    const double pk =
        static_cast<double>(grid[static_cast<std::size_t>(k + 1)]);
    const double q = procs / (p0 * pk);
    const double w = static_cast<double>(
        ceil_div(p.dims[static_cast<std::size_t>(k)],
                 grid[static_cast<std::size_t>(k + 1)]) *
        rank_block);
    const double moved = 2.0 * w * (q - 1.0) / q;
    if (k != mode) {
      c.factor_words += moved;
      c.factor_messages += collective_rounds_model(
          q, sched.factor == CollectiveKind::kRecursive);
    } else {
      c.output_words += moved;
      c.output_messages += collective_rounds_model(
          q, sched.output == CollectiveKind::kRecursive);
    }
  }
  c.words = c.tensor_words + c.factor_words + c.output_words;
  c.messages = c.tensor_messages + c.factor_messages + c.output_messages;
  return c;
}

}  // namespace

PredictProblem make_predict_problem(const StoredTensor& x, index_t rank,
                                    SparseTensor& scratch) {
  MTK_CHECK(!x.empty(), "make_predict_problem: empty tensor handle");
  PredictProblem p;
  p.dims = x.dims();
  p.rank = rank;
  p.format = x.format();
  p.nnz = x.stored_values();
  if (x.format() != StorageFormat::kDense) {
    p.coo = &sparse_coo_view(x, scratch);
  }
  return p;
}

CommPrediction predict_mttkrp_comm(const PredictProblem& p, ParAlgo algo,
                                   const std::vector<int>& grid, int mode,
                                   SparsePartitionScheme scheme,
                                   CollectiveSchedule collectives,
                                   int exact_rank_cap) {
  check_problem(p);
  const int n = static_cast<int>(p.dims.size());
  MTK_CHECK(algo == ParAlgo::kAllModes || (mode >= 0 && mode < n),
            "output mode ", mode, " out of range for order ", n);

  const bool sparse = p.format != StorageFormat::kDense;
  // The per-rank replay needs real boundaries for medium-grained partitions
  // and real per-fiber nonzero counts for the sparse Algorithm 4 gather.
  const bool need_coo =
      sparse && (scheme == SparsePartitionScheme::kMediumGrained ||
                 algo == ParAlgo::kGeneral);

  if (algo == ParAlgo::kGeneral) {
    MTK_CHECK(static_cast<int>(grid.size()) == n + 1,
              "general algorithm needs an (N+1)-way grid, got ", grid.size(),
              " extents for order ", n);
    MTK_CHECK(grid[0] >= 1 && grid[0] <= p.rank, "grid extent P0 = ",
              grid[0], " out of range [1, ", p.rank, "]");
    PredictProblem sub = p;
    const std::vector<int> sub_shape(grid.begin() + 1, grid.end());
    check_n_way_grid(sub, sub_shape);

    index_t procs = 1;
    for (int e : grid) procs = checked_mul(procs, e);
    if (procs > exact_rank_cap || (need_coo && p.coo == nullptr)) {
      return closed_general(p, grid, mode, collectives);
    }

    const ProcessorGrid pgrid(grid);
    const ProcessorGrid sub_grid(sub_shape);
    const std::vector<std::vector<Range>> parts =
        planned_partitions(p, sub_shape, scheme);
    const std::vector<Range> rank_parts = block_partition(p.rank, grid[0]);

    std::vector<index_t> fiber_words(
        static_cast<std::size_t>(sub_grid.size()));
    if (p.format == StorageFormat::kDense) {
      for (int f = 0; f < sub_grid.size(); ++f) {
        const std::vector<int> c = sub_grid.coords(f);
        index_t block = 1;
        for (int k = 0; k < n; ++k) {
          block = checked_mul(
              block, parts[static_cast<std::size_t>(k)]
                          [static_cast<std::size_t>(
                               c[static_cast<std::size_t>(k)])]
                         .length());
        }
        fiber_words[static_cast<std::size_t>(f)] = block;
      }
    } else {
      const BlockNnzStats stats = count_block_nnz(*p.coo, sub_grid, parts);
      for (int f = 0; f < sub_grid.size(); ++f) {
        fiber_words[static_cast<std::size_t>(f)] = checked_mul(
            stats.per_block[static_cast<std::size_t>(f)],
            static_cast<index_t>(n + 1));
      }
    }

    RankAccum acc(pgrid.size());
    accumulate_general(acc, pgrid, sub_grid, parts, rank_parts, fiber_words,
                       mode, collectives);
    return acc.finalize();
  }

  check_n_way_grid(p, grid);
  index_t procs = 1;
  for (int e : grid) procs = checked_mul(procs, e);
  const bool all_modes = algo == ParAlgo::kAllModes;
  if (procs > exact_rank_cap || (need_coo && p.coo == nullptr)) {
    return closed_stationary(p, grid, mode, all_modes, collectives);
  }

  const ProcessorGrid pgrid(grid);
  const std::vector<std::vector<Range>> parts =
      planned_partitions(p, grid, scheme);
  RankAccum acc(pgrid.size());
  accumulate_stationary(acc, pgrid, parts, p.rank, mode, all_modes,
                        collectives);
  return acc.finalize();
}

CommPrediction predict_cp_als_iteration(const PredictProblem& p,
                                        const std::vector<int>& grid,
                                        SparsePartitionScheme scheme,
                                        CollectiveSchedule collectives,
                                        int exact_rank_cap) {
  check_problem(p);
  check_n_way_grid(p, grid);
  const int n = static_cast<int>(p.dims.size());
  index_t procs = 1;
  for (int e : grid) procs = checked_mul(procs, e);
  const index_t r_squared = checked_mul(p.rank, p.rank);

  const bool need_coo =
      p.format != StorageFormat::kDense &&
      scheme == SparsePartitionScheme::kMediumGrained;
  if (procs > exact_rank_cap || (need_coo && p.coo == nullptr)) {
    CommPrediction c;
    for (int mode = 0; mode < n; ++mode) {
      const CommPrediction m =
          closed_stationary(p, grid, mode, false, collectives);
      c.factor_words += m.factor_words;
      c.output_words += m.output_words;
      c.factor_messages += m.factor_messages;
      c.output_messages += m.output_messages;
    }
    const double pp = static_cast<double>(procs);
    c.gram_words = 4.0 * static_cast<double>(n) *
                   static_cast<double>(r_squared) * (pp - 1.0) / pp;
    c.gram_messages = 2.0 * static_cast<double>(n) *
                      collective_rounds_model(
                          pp, collectives.gram == CollectiveKind::kRecursive);
    c.words = c.factor_words + c.output_words + c.gram_words;
    c.messages = c.factor_messages + c.output_messages + c.gram_messages;
    return c;
  }

  const ProcessorGrid pgrid(grid);
  const std::vector<std::vector<Range>> parts =
      planned_partitions(p, grid, scheme);
  RankAccum acc(pgrid.size());
  for (int mode = 0; mode < n; ++mode) {
    accumulate_stationary(acc, pgrid, parts, p.rank, mode, false,
                          collectives);
    accumulate_gram(acc, pgrid.size(), r_squared, collectives);
  }
  return acc.finalize();
}

}  // namespace mtk
