// Communication-aware autotuning planner: given a tensor, a CP rank, and a
// processor count, decide which parallel algorithm, storage backend,
// processor grid, and sparse partition scheme to run — and report how far
// the choice sits from the paper's parallel lower bounds.
//
// The search reuses the costmodel enumeration (every integer factorization
// of P, Eq. (14)/(18) feasibility rules) to shortlist candidate grids by the
// closed-form models, then re-scores the shortlist with the exact per-rank
// predictor (src/planner/predict.hpp), which replays the simulator's
// collective schedules word-for-word. Candidates are ranked by
//
//   score = predicted bottleneck words
//         + flop_word_ratio * predicted bottleneck local flops,
//
// so the default (flop_word_ratio = 0) minimizes pure communication — the
// paper's objective — while a positive ratio lets load balance justify the
// medium-grained partition or the cheaper CSF kernel on skewed tensors.
// Every plan carries its predicted words/messages, an optimality ratio
// against bounds/parallel_bounds, and (for sparse input) the per-process
// nonzero balance of its partition.
#pragma once

#include <cstdio>
#include <vector>

#include "src/bounds/parallel_bounds.hpp"
#include "src/planner/calibrate.hpp"
#include "src/planner/predict.hpp"

namespace mtk {

enum class PlanWorkload {
  kSingleMttkrp,  // one B^(n): Algorithm 3 vs Algorithm 4 candidates
  kAllModes,      // every B^(n) at once: the all-modes driver's grids
  kCpAls,         // repeated sweeps: stationary grids, per-iteration cost
};

const char* to_string(PlanWorkload workload);

// How the plan's local MTTKRP kernels execute: exactly, or through the
// randomized sketched backend (src/sketch) — leverage-score KRP sampling
// with sketched normal equations. Sampled plans are only generated when the
// caller grants an accuracy budget (PlannerOptions::epsilon > 0), carry the
// sample count and the model's predicted relative error, and compete with
// the exact plans under the same score.
enum class ExecutionPath {
  kExact,
  kSampled,
};

const char* to_string(ExecutionPath path);

struct PlannerOptions {
  int procs = 1;
  int mode = 0;                   // output mode for kSingleMttkrp
  PlanWorkload workload = PlanWorkload::kSingleMttkrp;
  bool consider_general = true;   // Algorithm 4 candidates (kSingleMttkrp)
  bool consider_medium_grained = true;  // sparse partition candidates
  int top_k = 8;                  // ranked plans to keep
  int shortlist = 16;             // closed-form survivors per algorithm
  int exact_rank_cap = 1 << 15;   // per-rank replay cap (see predict.hpp)
  // Machine balance: seconds-per-flop / seconds-per-word (γ/β). 0 ranks by
  // pure communication; ~1e-2 matches a node moving words ~100x slower than
  // flops and makes nonzero balance matter on skewed tensors.
  double flop_word_ratio = 0.0;
  // Latency balance: seconds-per-message / seconds-per-word (α/β). 0 keeps
  // the paper's bandwidth-only objective and the bucket rings; > 0 makes
  // the per-phase collective-kind selection live — recursive doubling/
  // halving wins a phase when its log2(q) rounds beat the ring's q-1 by
  // more than any word-count penalty of the non-uniform doubling exchange.
  double latency_word_ratio = 0.0;
  // Measured machine parameters (mttkrp_cli --calibrate). When
  // machine.measured is set, the two hand-set ratios above are superseded:
  // α/β comes from the calibration and γ/β is taken per candidate backend,
  // so a measured CSF-vs-COO kernel gap steers the backend choice.
  Calibration machine;
  // MTTKRPs the plan will serve (CP-ALS: iterations x N). Amortizes the
  // one-time CSF compression cost in the backend choice.
  int reuse_count = 1;
  // Accuracy budget for the randomized sketched backend. 0 (the default)
  // plans exact execution only — kSampled candidates are never generated.
  // A value in (0, 1) admits sampled twins of every sparse candidate: the
  // sample count follows S = O(R log R / epsilon^2) (sketch/krp_sample),
  // the cost model charges only the surviving nonzeros and the sketched
  // Gram work, and each sampled plan reports its predicted relative error.
  double epsilon = 0.0;
  // Explicit sample count override; 0 derives it from epsilon. Only
  // meaningful when epsilon > 0 (the gate stays epsilon).
  index_t sample_count = 0;
};

struct ExecutionPlan {
  ParAlgo algo = ParAlgo::kStationary;
  StorageFormat backend = StorageFormat::kDense;
  std::vector<int> grid;  // N extents (N+1 with P0 first for kGeneral)
  SparsePartitionScheme scheme = SparsePartitionScheme::kBlock;
  // Shared-memory reduction schedule for the plan's local sparse kernels,
  // taken from the calibration's measured tiled-vs-privatized rates for
  // this backend (kAuto when unmeasured or dense: the kernels keep their
  // own heuristic). The simulator's per-rank local kernels run serially,
  // so this is advisory there; the threaded entry points (mttkrp dispatch,
  // cp_als with MttkrpOptions::parallel) honor it directly.
  SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto;
  // Per-phase collective choice (bucket ring vs recursive doubling/halving)
  // the plan's run must use for the prediction to stay word- and
  // message-exact; all-bucket unless the α-β model favored fewer rounds.
  CollectiveSchedule collectives;
  CommPrediction comm;     // per MTTKRP (per iteration for kCpAls)
  double compute_flops = 0.0;  // bottleneck rank's modeled local flops
  double score = 0.0;          // ranking objective (see header comment)
  // Best proved bound on one MTTKRP's bottleneck words (sent+received) and
  // the plan's predicted-words ratio against it, normalized to a
  // per-MTTKRP share so it is comparable across workloads: kCpAls divides
  // its iteration's MTTKRP traffic (Gram All-Reduces excluded — they are
  // extra relative to the paper's single-MTTKRP analyses) over the N
  // per-mode sweeps, kAllModes its combined traffic over the N outputs.
  double lower_bound = 0.0;
  double optimality_ratio = 0.0;
  // Per-process nonzero balance of this plan's partition (sparse input
  // with available coordinates only; per_block left empty otherwise).
  BlockNnzStats nnz_stats;
  // Exact kernels, or the leverage-sampled backend (epsilon-gated).
  ExecutionPath path = ExecutionPath::kExact;
  // kSampled only: KRP sample rows per MTTKRP, and the model's predicted
  // relative error for that sample size (0 for exact plans).
  index_t sample_count = 0;
  double predicted_error = 0.0;
};

struct PlanReport {
  shape_t dims;
  index_t rank = 0;
  int procs = 1;
  StorageFormat input_format = StorageFormat::kDense;
  index_t nnz = 0;
  std::vector<ExecutionPlan> ranked;  // best first; never empty

  const ExecutionPlan& best() const {
    MTK_CHECK(!ranked.empty(), "plan report is empty");
    return ranked.front();
  }
};

// Plans against the actual tensor: medium-grained boundaries, Algorithm 4
// fiber tuples, and nonzero-balance stats all use the real coordinates.
// Throws if no feasible grid exists (e.g. P exceeds every feasible
// factorization under the P_k <= I_k rules).
PlanReport plan_mttkrp(const StoredTensor& x, index_t rank,
                       const PlannerOptions& opts);

// Plans the all-modes exchange a gradient-based CP iteration needs (every
// B^(n) against the same factors at once — the workload par_cp_gradient
// runs): forces PlanWorkload::kAllModes, otherwise identical to
// plan_mttkrp. The ranked grids trade the shared factor All-Gathers
// against the N output Reduce-Scatters.
PlanReport plan_cp_gradient(const StoredTensor& x, index_t rank,
                            PlannerOptions opts);

// Model-only planning from the problem shape (no nonzero structure):
// sparse predictions assume balanced nonzeros. For what-if studies at
// processor counts too large to simulate.
PlanReport plan_mttkrp_model(const shape_t& dims, index_t rank,
                             StorageFormat format, index_t nnz,
                             const PlannerOptions& opts);

// Prints the ranked plans as an aligned table with the prediction
// breakdown, optimality ratios, and nonzero-balance columns.
void print_plan_report(const PlanReport& report, std::FILE* out);

}  // namespace mtk
