// Memoized planning: repeated CP-ALS (or CLI) invocations on the same
// problem plan once. Reports are keyed by a 64-bit FNV-1a fingerprint of
// (dims, rank, P, storage format, nnz profile, planner options); the nnz
// profile hashes the nonzero count plus an evenly strided structure sample
// — up to 64 coordinates for COO, up to 64 stored fiber indices per tree
// level for CSF — so re-planning triggers when the sparsity structure, not
// just the shape, changes (structure differing only in skipped-over
// entries is deliberately treated as equivalent). A hash hit is verified
// against the stored scalar key fields (dims, rank, procs, format, nnz,
// options), so a cross-problem 64-bit collision re-plans instead of
// returning another problem's grids. Values are shared_ptr-owned and
// immutable, so callers may hold a report after eviction (clear()) and
// across threads; the cache itself is mutex-guarded.
//
// The cache also persists across processes: save() writes a versioned,
// line-oriented text file (doubles as hex floats, so every field — scores,
// ratios, calibration parameters — round-trips bit-exactly) keyed by the
// same fingerprints, optionally carrying a machine Calibration; load()
// restores it. Any version mismatch, truncation, or corruption degrades
// gracefully to a cold cache (load clears and returns false) — a damaged
// file can cost re-planning, never a wrong plan.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/planner/planner.hpp"

namespace mtk {

class PlanCache {
 public:
  // Bump when the on-disk layout or any serialized enum changes. The
  // reader accepts the current version and (as the one supported
  // migration) version 2 — the pre-sketch layout, whose entries load with
  // the sampled-path fields at their exact-execution defaults; anything
  // else degrades to a cold cache.
  static constexpr int kFileVersion = 3;
  static constexpr int kLegacyFileVersion = 2;
  // Returns the cached report for this (tensor, rank, options) key, planning
  // on a miss. The CSF path expands to COO once per *miss* only.
  std::shared_ptr<const PlanReport> get_or_plan(const StoredTensor& x,
                                                index_t rank,
                                                const PlannerOptions& opts);

  std::size_t size() const;
  std::size_t hits() const;
  std::size_t misses() const;
  void clear();

  // Writes every entry (and, when non-null, `calibration`) to `path`.
  // Returns false if the file cannot be written. `version` selects the
  // on-disk layout: kFileVersion (default) or kLegacyFileVersion, the
  // latter for producing v2 files (migration tests, downgrade escapes) —
  // legacy files drop the sampled-path fields, so only entries planned
  // with epsilon = 0 round-trip losslessly through v2.
  bool save(const std::string& path,
            const Calibration* calibration = nullptr,
            int version = kFileVersion) const;

  // Restores entries saved by save(), replacing the current contents (hit/
  // miss counters reset). On a missing, version-mismatched, truncated, or
  // corrupt file the cache is left cold (cleared) and load returns false;
  // `calibration`, when non-null, receives the stored calibration only on
  // a fully successful parse.
  bool load(const std::string& path, Calibration* calibration = nullptr);

  // Process-wide instance used by par_cp_als --autotune and the CLI.
  static PlanCache& global();

 private:
  // Verifiable part of the key, stored with the value and compared on every
  // hash hit (the coordinate-sample fingerprint stays hash-only).
  struct KeyFields {
    shape_t dims;
    index_t rank = 0;
    StorageFormat format = StorageFormat::kDense;
    index_t nnz = 0;
    int procs = 0;
    int mode = 0;
    PlanWorkload workload = PlanWorkload::kSingleMttkrp;
    bool consider_general = false;
    bool consider_medium_grained = false;
    int top_k = 0;
    int shortlist = 0;
    int exact_rank_cap = 0;
    double flop_word_ratio = 0.0;
    double latency_word_ratio = 0.0;
    Calibration machine;
    int reuse_count = 0;
    double epsilon = 0.0;
    index_t sample_count = 0;

    bool operator==(const KeyFields& other) const;
  };
  struct Entry {
    KeyFields key;
    std::shared_ptr<const PlanReport> report;
  };

  static KeyFields make_key_fields(const StoredTensor& x, index_t rank,
                                   const PlannerOptions& opts);

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

// The cache key: exposed for tests asserting profile sensitivity.
std::uint64_t plan_cache_key(const StoredTensor& x, index_t rank,
                             const PlannerOptions& opts);

}  // namespace mtk
