#include "src/planner/planner.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/costmodel/grid_search.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/parsim/grid.hpp"
#include "src/parsim/par_common.hpp"
#include "src/sketch/krp_sample.hpp"
#include "src/support/check.hpp"

namespace mtk {

const char* to_string(PlanWorkload workload) {
  switch (workload) {
    case PlanWorkload::kSingleMttkrp: return "single-mttkrp";
    case PlanWorkload::kAllModes: return "all-modes";
    case PlanWorkload::kCpAls: return "cp-als";
  }
  return "unknown";
}

const char* to_string(ExecutionPath path) {
  switch (path) {
    case ExecutionPath::kExact: return "exact";
    case ExecutionPath::kSampled: return "sampled";
  }
  return "unknown";
}

namespace {

std::vector<int> to_int_grid(const std::vector<index_t>& grid) {
  std::vector<int> g;
  g.reserve(grid.size());
  for (index_t v : grid) g.push_back(static_cast<int>(v));
  return g;
}

// Closed-form shortlist: the `keep` cheapest feasible factorizations of P
// under the model `cost`, reusing the costmodel enumeration. The exact
// per-rank predictor then re-scores only these survivors.
std::vector<std::vector<int>> shortlist_grids(
    index_t procs, int parts, int keep,
    const std::function<bool(const std::vector<index_t>&)>& feasible,
    const std::function<double(const std::vector<index_t>&)>& cost) {
  std::vector<std::pair<double, std::vector<index_t>>> scored;
  enumerate_factorizations(procs, parts,
                           [&](const std::vector<index_t>& grid) {
    if (!feasible(grid)) return;
    scored.emplace_back(cost(grid), grid);
  });
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (static_cast<int>(scored.size()) > keep) {
    scored.resize(static_cast<std::size_t>(keep));
  }
  std::vector<std::vector<int>> grids;
  grids.reserve(scored.size());
  for (const auto& [c, g] : scored) grids.push_back(to_int_grid(g));
  return grids;
}

struct Candidate {
  ParAlgo algo;
  std::vector<int> grid;
  SparsePartitionScheme scheme;
};

std::string grid_string(const std::vector<int>& grid) {
  std::string s;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i) s += "x";
    s += std::to_string(grid[i]);
  }
  return s;
}

PlanReport plan_impl(const PredictProblem& p, const PlannerOptions& opts) {
  check_shape(p.dims);
  const int n = static_cast<int>(p.dims.size());
  MTK_CHECK(n >= 2, "planner requires order >= 2");
  MTK_CHECK(p.rank >= 1, "rank must be >= 1, got ", p.rank);
  MTK_CHECK(opts.procs >= 1, "procs must be >= 1, got ", opts.procs);
  MTK_CHECK(opts.top_k >= 1, "top_k must be >= 1, got ", opts.top_k);
  MTK_CHECK(opts.workload == PlanWorkload::kAllModes ||
                (opts.mode >= 0 && opts.mode < n),
            "output mode ", opts.mode, " out of range for order ", n);
  MTK_CHECK(opts.flop_word_ratio >= 0.0, "flop_word_ratio must be >= 0");
  MTK_CHECK(opts.latency_word_ratio >= 0.0,
            "latency_word_ratio must be >= 0");
  MTK_CHECK(opts.reuse_count >= 1, "reuse_count must be >= 1");
  MTK_CHECK(opts.epsilon >= 0.0 && opts.epsilon < 1.0,
            "epsilon must be in [0, 1), got ", opts.epsilon);
  MTK_CHECK(opts.sample_count >= 0, "sample_count must be >= 0");

  // Machine-balance ratios: a measured calibration supersedes the knobs.
  const double lat = opts.machine.measured
                         ? opts.machine.latency_word_ratio()
                         : opts.latency_word_ratio;
  const auto flop_ratio = [&](StorageFormat backend) {
    return opts.machine.measured ? opts.machine.flop_word_ratio(backend)
                                 : opts.flop_word_ratio;
  };
  const bool flops_matter = flop_ratio(StorageFormat::kDense) > 0.0 ||
                            flop_ratio(StorageFormat::kCoo) > 0.0 ||
                            flop_ratio(StorageFormat::kCsf) > 0.0;

  const bool sparse = p.format != StorageFormat::kDense;
  const index_t procs = opts.procs;
  CostProblem cp;
  cp.dims = p.dims;
  cp.rank = p.rank;

  // Candidate (algo, grid, scheme) triples from the closed-form shortlists.
  std::vector<Candidate> candidates;
  const int keep = std::max(opts.top_k, opts.shortlist);
  std::vector<SparsePartitionScheme> schemes{SparsePartitionScheme::kBlock};
  if (sparse && opts.consider_medium_grained && p.coo != nullptr) {
    schemes.push_back(SparsePartitionScheme::kMediumGrained);
  }

  const ParAlgo base_algo = opts.workload == PlanWorkload::kAllModes
                                ? ParAlgo::kAllModes
                                : ParAlgo::kStationary;
  // The shortlists rank grids by the closed-form α-β cost: the Eq. (14)/
  // (18) word terms plus the matching round counts (recursive rounds where
  // a power-of-two group allows them — the per-phase selection below can
  // only do better). With lat = 0 this is the paper's bandwidth-only
  // shortlist unchanged.
  const double sweeps_per_mttkrp =
      opts.workload == PlanWorkload::kAllModes ? 2.0 : 1.0;
  for (const std::vector<int>& g : shortlist_grids(
           procs, n, keep,
           [&](const std::vector<index_t>& grid) {
             return stationary_grid_feasible(cp, grid);
           },
           [&](const std::vector<index_t>& grid) {
             return stationary_comm_cost(cp, grid) +
                    lat * sweeps_per_mttkrp *
                        stationary_msg_cost(grid, true);
           })) {
    for (SparsePartitionScheme scheme : schemes) {
      candidates.push_back({base_algo, g, scheme});
    }
  }

  if (opts.workload == PlanWorkload::kSingleMttkrp && opts.consider_general) {
    for (const std::vector<int>& g : shortlist_grids(
             procs, n + 1, keep,
             [&](const std::vector<index_t>& grid) {
               return general_grid_feasible(cp, grid);
             },
             [&](const std::vector<index_t>& grid) {
               const double words =
                   sparse ? general_comm_cost_sparse(cp, p.nnz, grid)
                          : general_comm_cost(cp, grid);
               return words + lat * general_msg_cost(grid, true);
             })) {
      for (SparsePartitionScheme scheme : schemes) {
        candidates.push_back({ParAlgo::kGeneral, g, scheme});
      }
    }
  }
  MTK_CHECK(!candidates.empty(), "no feasible grid for P = ", opts.procs,
            " (every factorization violates P_k <= I_k",
            opts.consider_general ? " / P0 <= R)" : ")");

  ParProblem bound_problem;
  bound_problem.dims = p.dims;
  bound_problem.rank = p.rank;
  bound_problem.procs = procs;
  const double bound = par_lower_bound(bound_problem);

  const std::vector<StorageFormat> backends =
      sparse ? std::vector<StorageFormat>{StorageFormat::kCoo,
                                          StorageFormat::kCsf}
             : std::vector<StorageFormat>{StorageFormat::kDense};

  // Randomized-backend candidates (sparse only, epsilon-gated): the sample
  // size the budget buys, and the expected fraction of nonzeros whose
  // complement tuple survives a size-S sample — S draws from the
  // complement-KRP row space, so under the balanced model a stored value
  // survives with probability ~ S / (rows of the complement KRP). The
  // workloads that produce several outputs average that row count over the
  // modes they sweep.
  const bool consider_sampled = sparse && opts.epsilon > 0.0;
  index_t sampled_count = 0;
  double survivor_fraction = 1.0;
  if (consider_sampled) {
    sampled_count = opts.sample_count > 0
                        ? opts.sample_count
                        : sample_count_for_epsilon(p.rank, opts.epsilon);
    double total = 1.0;
    for (index_t d : p.dims) total *= static_cast<double>(d);
    double cells;
    if (opts.workload == PlanWorkload::kSingleMttkrp) {
      cells = total / static_cast<double>(
                          p.dims[static_cast<std::size_t>(opts.mode)]);
    } else {
      cells = 0.0;
      for (index_t d : p.dims) cells += total / static_cast<double>(d);
      cells /= static_cast<double>(n);
    }
    survivor_fraction = std::min(
        1.0, static_cast<double>(sampled_count) / std::max(cells, 1.0));
  }

  Span span(SpanCategory::kPlanner, "plan_mttkrp");
  if (span.enabled()) {
    span.arg("candidates", static_cast<index_t>(candidates.size()));
    span.arg("procs", opts.procs);
  }
  static Counter& plans_scored =
      MetricsRegistry::global().counter("mtk.plan.candidates_scored");
  plans_scored.add(static_cast<index_t>(candidates.size()));

  std::vector<ExecutionPlan> plans;
  for (const Candidate& cand : candidates) {
    // Communication depends on (algo, grid, scheme) but not on the sparse
    // backend: collective payloads are factor/output matrices plus, for
    // Algorithm 4, (coordinates, value) tuples of either sparse format.
    const auto predict = [&](const CollectiveSchedule& sched) {
      switch (opts.workload) {
        case PlanWorkload::kCpAls:
          return predict_cp_als_iteration(p, cand.grid, cand.scheme, sched,
                                          opts.exact_rank_cap);
        default:
          return predict_mttkrp_comm(p, cand.algo, cand.grid, opts.mode,
                                     cand.scheme, sched,
                                     opts.exact_rank_cap);
      }
    };

    // Per-phase collective-kind selection by the α-β model: compare each
    // phase's (words, rounds) under the all-bucket and all-recursive
    // replays and keep the cheaper kind, with ties staying on the bucket
    // ring (bandwidth-optimal for any group size). Small-message phases go
    // recursive once α · (q-1-log2 q) outweighs any word penalty of the
    // non-uniform doubling exchange; large-message phases stay on the
    // ring. The mixed schedule is then re-replayed so the reported
    // prediction is exact for what the run will actually do.
    CollectiveSchedule sched;  // all-bucket
    CommPrediction comm = predict(sched);
    if (lat > 0.0) {
      const CommPrediction rec = predict(CollectiveKind::kRecursive);
      const auto cheaper = [&](double words_b, double msgs_b, double words_r,
                               double msgs_r) {
        return words_r + lat * msgs_r < words_b + lat * msgs_b;
      };
      if (cheaper(comm.tensor_words, comm.tensor_messages, rec.tensor_words,
                  rec.tensor_messages)) {
        sched.tensor = CollectiveKind::kRecursive;
      }
      if (cheaper(comm.factor_words, comm.factor_messages, rec.factor_words,
                  rec.factor_messages)) {
        sched.factor = CollectiveKind::kRecursive;
      }
      if (cheaper(comm.output_words, comm.output_messages, rec.output_words,
                  rec.output_messages)) {
        sched.output = CollectiveKind::kRecursive;
      }
      if (cheaper(comm.gram_words, comm.gram_messages, rec.gram_words,
                  rec.gram_messages)) {
        sched.gram = CollectiveKind::kRecursive;
      }
      if (sched != CollectiveSchedule()) {
        comm = sched == CollectiveSchedule(CollectiveKind::kRecursive)
                   ? rec
                   : predict(sched);
      }
    }

    // Bottleneck stored values of this candidate's partition. Algorithm 4
    // replicates each P0-fiber's block on its members, so the per-process
    // counts are the fiber-block counts. The O(nnz) exact count only runs
    // here when it can change the ranking (flop_word_ratio > 0); otherwise
    // the surviving top-k plans get their balance stats filled after the
    // sort, and scoring uses the balanced estimate.
    BlockNnzStats stats;
    index_t bottleneck_values;
    const std::vector<int> tensor_extents =
        cand.algo == ParAlgo::kGeneral
            ? std::vector<int>(cand.grid.begin() + 1, cand.grid.end())
            : cand.grid;
    if (sparse && p.coo != nullptr && flops_matter) {
      stats = count_block_nnz(*p.coo, ProcessorGrid(tensor_extents),
                              cand.scheme);
      bottleneck_values = stats.max_nnz;
    } else {
      index_t block = 1;
      int blocks = 1;
      for (int k = 0; k < n; ++k) {
        block = checked_mul(block,
                            ceil_div(p.dims[static_cast<std::size_t>(k)],
                                     tensor_extents[static_cast<std::size_t>(k)]));
        blocks *= tensor_extents[static_cast<std::size_t>(k)];
      }
      bottleneck_values = sparse
                              ? ceil_div(p.nnz, static_cast<index_t>(blocks))
                              : block;
    }

    const index_t cols = cand.algo == ParAlgo::kGeneral
                             ? ceil_div(p.rank, cand.grid[0])
                             : p.rank;
    const double sweeps =
        opts.workload == PlanWorkload::kCpAls ? static_cast<double>(n) : 1.0;

    for (StorageFormat backend : backends) {
      ExecutionPlan plan;
      plan.algo = cand.algo;
      plan.backend = backend;
      plan.grid = cand.grid;
      plan.scheme = cand.scheme;
      plan.kernel_variant = opts.machine.preferred_variant(backend);
      plan.collectives = sched;
      plan.comm = comm;
      plan.nnz_stats = stats;
      plan.compute_flops = sweeps * static_cast<double>(bottleneck_values) *
                           static_cast<double>(cols) *
                           modeled_flops_per_value(backend, n);
      if (backend == StorageFormat::kCsf && p.format != StorageFormat::kCsf) {
        // One-time COO -> CSF compression (a sort-dominated pass), amortized
        // over the MTTKRPs the plan serves.
        const double nnz_d = static_cast<double>(std::max<index_t>(p.nnz, 1));
        plan.compute_flops +=
            2.0 * nnz_d * std::log2(nnz_d + 1.0) /
            static_cast<double>(opts.reuse_count);
      }
      plan.score = comm.words + lat * comm.messages +
                   flop_ratio(backend) * plan.compute_flops;
      plan.lower_bound = bound;
      // Normalize multi-MTTKRP workloads to a per-MTTKRP share so the
      // ratio column is comparable across workloads: kCpAls divides its
      // MTTKRP traffic over the N per-mode sweeps, kAllModes its combined
      // traffic over the N outputs it produces (ratios below the
      // single-MTTKRP baseline show the communication reuse).
      double mttkrp_words = comm.words;
      if (opts.workload == PlanWorkload::kCpAls) {
        mttkrp_words = (comm.words - comm.gram_words) / static_cast<double>(n);
      } else if (opts.workload == PlanWorkload::kAllModes) {
        mttkrp_words = comm.words / static_cast<double>(n);
      }
      plan.optimality_ratio =
          par_optimality_ratio(mttkrp_words, bound_problem);

      if (consider_sampled) {
        // Sampled twin: same (algo, grid, scheme, backend), randomized
        // kernels. Compute charges one filter probe per stored value, the
        // full kernel flops only for the expected survivors, and the
        // sketched Gram assembly (S rank^2-ish work folded into S * cols *
        // (n+1)). Communication keeps the exact plan's outputs and Grams
        // but moves only surviving tensor values and at most the sampled
        // factor rows; the prediction is a balanced model, not a replay.
        ExecutionPlan sp = plan;
        sp.path = ExecutionPath::kSampled;
        sp.sample_count = sampled_count;
        sp.predicted_error = predicted_sampling_error(p.rank, sampled_count);
        const double bv_d = static_cast<double>(bottleneck_values);
        const double cols_d = static_cast<double>(cols);
        const double s_d = static_cast<double>(sampled_count);
        sp.compute_flops =
            sweeps * (bv_d + survivor_fraction * bv_d * cols_d *
                                 modeled_flops_per_value(backend, n) +
                      s_d * cols_d * static_cast<double>(n + 1));
        if (backend == StorageFormat::kCsf &&
            p.format != StorageFormat::kCsf) {
          const double nnz_d =
              static_cast<double>(std::max<index_t>(p.nnz, 1));
          sp.compute_flops += 2.0 * nnz_d * std::log2(nnz_d + 1.0) /
                              static_cast<double>(opts.reuse_count);
        }
        sp.comm.tensor_words *= survivor_fraction;
        sp.comm.factor_words =
            std::min(sp.comm.factor_words,
                     sweeps * s_d * static_cast<double>(n - 1) * cols_d);
        sp.comm.words = sp.comm.tensor_words + sp.comm.factor_words +
                        sp.comm.output_words + sp.comm.gram_words;
        sp.comm.exact = false;
        sp.score = sp.comm.words + lat * sp.comm.messages +
                   flop_ratio(backend) * sp.compute_flops;
        double sp_mttkrp_words = sp.comm.words;
        if (opts.workload == PlanWorkload::kCpAls) {
          sp_mttkrp_words =
              (sp.comm.words - sp.comm.gram_words) / static_cast<double>(n);
        } else if (opts.workload == PlanWorkload::kAllModes) {
          sp_mttkrp_words = sp.comm.words / static_cast<double>(n);
        }
        sp.optimality_ratio =
            par_optimality_ratio(sp_mttkrp_words, bound_problem);
        plans.push_back(std::move(sp));
      }

      plans.push_back(std::move(plan));
    }
  }

  std::sort(plans.begin(), plans.end(),
            [&](const ExecutionPlan& a, const ExecutionPlan& b) {
    if (a.score != b.score) return a.score < b.score;
    if (a.comm.messages != b.comm.messages) {
      return a.comm.messages < b.comm.messages;
    }
    // Prefer staying on the input's own format (no conversion), then the
    // simpler algorithm.
    const int a_conv = a.backend == p.format ? 0 : 1;
    const int b_conv = b.backend == p.format ? 0 : 1;
    if (a_conv != b_conv) return a_conv < b_conv;
    // A sampled plan must *win* on cost to displace exact execution: ties
    // keep the deterministic answer.
    if (a.path != b.path) {
      return static_cast<int>(a.path) < static_cast<int>(b.path);
    }
    return static_cast<int>(a.algo) < static_cast<int>(b.algo);
  });
  if (static_cast<int>(plans.size()) > opts.top_k) {
    plans.resize(static_cast<std::size_t>(opts.top_k));
  }

  // Deferred balance stats for the surviving plans (see the comment at the
  // count above).
  if (sparse && p.coo != nullptr) {
    for (ExecutionPlan& plan : plans) {
      if (!plan.nnz_stats.per_block.empty()) continue;
      const std::vector<int> extents =
          plan.algo == ParAlgo::kGeneral
              ? std::vector<int>(plan.grid.begin() + 1, plan.grid.end())
              : plan.grid;
      plan.nnz_stats =
          count_block_nnz(*p.coo, ProcessorGrid(extents), plan.scheme);
    }
  }

  PlanReport report;
  report.dims = p.dims;
  report.rank = p.rank;
  report.procs = opts.procs;
  report.input_format = p.format;
  report.nnz = p.nnz;
  report.ranked = std::move(plans);
  return report;
}

}  // namespace

PlanReport plan_mttkrp(const StoredTensor& x, index_t rank,
                       const PlannerOptions& opts) {
  SparseTensor scratch;
  const PredictProblem p = make_predict_problem(x, rank, scratch);
  return plan_impl(p, opts);
}

PlanReport plan_cp_gradient(const StoredTensor& x, index_t rank,
                            PlannerOptions opts) {
  opts.workload = PlanWorkload::kAllModes;
  return plan_mttkrp(x, rank, opts);
}

PlanReport plan_mttkrp_model(const shape_t& dims, index_t rank,
                             StorageFormat format, index_t nnz,
                             const PlannerOptions& opts) {
  PredictProblem p;
  p.dims = dims;
  p.rank = rank;
  p.format = format;
  p.nnz = format == StorageFormat::kDense ? shape_size(dims) : nnz;
  return plan_impl(p, opts);
}

void print_plan_report(const PlanReport& report, std::FILE* out) {
  std::fprintf(out, "plan report    : dims =");
  for (index_t d : report.dims) {
    std::fprintf(out, " %lld", static_cast<long long>(d));
  }
  std::fprintf(out, ", R = %lld, P = %d, input = %s (%lld stored values)\n",
               static_cast<long long>(report.rank), report.procs,
               to_string(report.input_format),
               static_cast<long long>(report.nnz));
  std::fprintf(
      out, "%-3s %-10s %-6s %-7s %-14s %-7s %-21s %12s %9s %8s %9s %9s\n",
      "#", "algo", "fmt", "path", "grid", "scheme", "collectives", "words",
      "msgs", "vs-lb", "max-nnz", "nnz-imb");
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    const ExecutionPlan& plan = report.ranked[i];
    char ratio[32];
    if (std::isinf(plan.optimality_ratio)) {
      std::snprintf(ratio, sizeof ratio, "inf");
    } else {
      std::snprintf(ratio, sizeof ratio, "%.2fx", plan.optimality_ratio);
    }
    const bool have_nnz = !plan.nnz_stats.per_block.empty();
    std::fprintf(out,
                 "%-3zu %-10s %-6s %-7s %-14s %-7s %-21s %12.0f %9.0f %8s",
                 i + 1, to_string(plan.algo), to_string(plan.backend),
                 to_string(plan.path), grid_string(plan.grid).c_str(),
                 plan.scheme == SparsePartitionScheme::kBlock ? "block"
                                                              : "medium",
                 to_string(plan.collectives).c_str(),
                 plan.comm.words, plan.comm.messages, ratio);
    if (have_nnz) {
      std::fprintf(out, " %9lld %8.2fx",
                   static_cast<long long>(plan.nnz_stats.max_nnz),
                   plan.nnz_stats.imbalance());
    } else {
      std::fprintf(out, " %9s %9s", "-", "-");
    }
    std::fprintf(out, "\n");
  }
  if (!report.ranked.empty()) {
    const ExecutionPlan& best = report.best();
    std::fprintf(out,
                 "best breakdown : tensor %.0f + factor %.0f + output %.0f",
                 best.comm.tensor_words, best.comm.factor_words,
                 best.comm.output_words);
    if (best.comm.gram_words > 0.0) {
      std::fprintf(out, " + gram %.0f", best.comm.gram_words);
    }
    std::fprintf(out, " words (%s), lower bound %.0f words\n",
                 best.comm.exact ? "exact replay" : "balanced model",
                 best.lower_bound);
    if (best.kernel_variant != SparseKernelVariant::kAuto) {
      std::fprintf(out, "local kernel   : %s %s (calibrated)\n",
                   to_string(best.backend),
                   to_string(best.kernel_variant));
    }
    if (best.path == ExecutionPath::kSampled) {
      std::fprintf(out,
                   "sampled path   : S = %lld KRP rows per MTTKRP, "
                   "predicted relative error %.3f\n",
                   static_cast<long long>(best.sample_count),
                   best.predicted_error);
    }
  }
}

}  // namespace mtk
