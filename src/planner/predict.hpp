// Unified communication predictor for the simulated parallel MTTKRP
// algorithms: one entry point covering Algorithm 3 (stationary), Algorithm 4
// (general), and the all-modes variant, over every storage format, both
// sparse partition schemes, and both collective schedules (bucket ring vs
// recursive doubling/halving).
//
// The predictor replays the collective schedules at the counter level — for
// a bucket All-Gather of W words over q members, the member at group
// position i moves 2W - c_i - c_{(i+1) mod q} words (sent plus received,
// where c_j are the flat chunk sizes) in q-1 messages; for a Reduce-Scatter
// it moves 2W - c_i - c_{(i-1) mod q} in q-1 messages. The recursive
// variants are replayed through their hypercube exchange (log2(q) messages;
// subcube chunk sums for the doubling words), honoring the dispatcher's
// fallback rules (power-of-two groups, uniform Reduce-Scatter chunks)
// decision-for-decision. Accumulating those closed forms per rank gives
// predictions that match the simulator's Machine counters *word for word
// and message for message*, including the nnz-aware Algorithm 4 tensor
// gather (the Eq. (18) analogue with nonzero terms: N+1 words per nonzero
// of each P0-fiber's block). Above `exact_rank_cap` ranks the per-rank
// replay is skipped and a balanced closed-form estimate (2x Eqs. (14)/(18),
// sent+received, with the matching α-side round counts) is returned with
// `exact = false`.
#pragma once

#include <vector>

#include "src/mttkrp/dispatch.hpp"
#include "src/parsim/collective_variants.hpp"
#include "src/parsim/distribution.hpp"
#include "src/support/index.hpp"

namespace mtk {

enum class ParAlgo { kStationary, kGeneral, kAllModes };

const char* to_string(ParAlgo algo);

struct CommPrediction {
  double words = 0.0;         // bottleneck rank's sent + received
  double messages = 0.0;      // max over ranks of messages sent
  double tensor_words = 0.0;  // share from the Algorithm 4 tensor All-Gather
  double factor_words = 0.0;  // share from the factor All-Gathers
  double output_words = 0.0;  // share from the output Reduce-Scatters
  double gram_words = 0.0;    // share from Gram All-Reduces (CP-ALS only)
  // Message counts of the max-words rank per phase (the α-side breakdown
  // the planner's per-phase schedule selection consumes). Note `messages`
  // above is a max over *all* ranks, so it can exceed the sum of these.
  double tensor_messages = 0.0;
  double factor_messages = 0.0;
  double output_messages = 0.0;
  double gram_messages = 0.0;
  // True when the per-rank replay ran (prediction matches the simulator's
  // counters exactly); false for the balanced closed-form estimate.
  bool exact = false;
};

// Problem description the predictor consumes. `coo` optionally carries the
// nonzero structure (borrowed; may be null): with it the predictor places
// medium-grained boundaries and counts each Algorithm 4 fiber block's
// tuples exactly; without it sparse predictions assume balanced nonzeros.
struct PredictProblem {
  shape_t dims;
  index_t rank = 0;
  StorageFormat format = StorageFormat::kDense;
  index_t nnz = 0;                    // stored values (dense: prod(dims))
  const SparseTensor* coo = nullptr;
};

// Builds a PredictProblem from a stored tensor. For CSF input the COO
// expansion lands in `scratch`, which must outlive the returned problem.
PredictProblem make_predict_problem(const StoredTensor& x, index_t rank,
                                    SparseTensor& scratch);

// Bottleneck communication of one MTTKRP. `grid` has N entries for
// kStationary/kAllModes and N+1 (P0 first) for kGeneral; `mode` is the
// output mode (ignored by kAllModes, which produces every mode).
// `collectives` is the per-phase schedule the run will use; the default
// replays the bucket rings everywhere.
CommPrediction predict_mttkrp_comm(const PredictProblem& p, ParAlgo algo,
                                   const std::vector<int>& grid, int mode,
                                   SparsePartitionScheme scheme =
                                       SparsePartitionScheme::kBlock,
                                   CollectiveSchedule collectives =
                                       CollectiveKind::kBucket,
                                   int exact_rank_cap = 1 << 15);

// One par_cp_als iteration on an N-way grid: N stationary MTTKRPs (one per
// output mode) plus N machine-wide R^2 Gram All-Reduces, accumulated per
// rank so the bottleneck is taken over the iteration's total.
CommPrediction predict_cp_als_iteration(const PredictProblem& p,
                                        const std::vector<int>& grid,
                                        SparsePartitionScheme scheme =
                                            SparsePartitionScheme::kBlock,
                                        CollectiveSchedule collectives =
                                            CollectiveKind::kBucket,
                                        int exact_rank_cap = 1 << 15);

}  // namespace mtk
