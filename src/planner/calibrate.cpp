#include "src/planner/calibrate.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "src/mttkrp/mttkrp.hpp"
#include "src/support/check.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Best-of-N timing of a thunk; the minimum filters scheduler noise.
template <typename Fn>
double best_of(int repetitions, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repetitions; ++i) {
    const Clock::time_point start = Clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

// The compiler must believe the probe buffers are used.
volatile double g_sink = 0.0;

}  // namespace

double modeled_flops_per_value(StorageFormat format, int order) {
  switch (format) {
    case StorageFormat::kDense: return static_cast<double>(order);
    case StorageFormat::kCoo: return static_cast<double>(order);
    case StorageFormat::kCsf: return static_cast<double>(order + 1) / 2.0;
  }
  return static_cast<double>(order);
}

double Calibration::seconds_per_flop(StorageFormat format) const {
  switch (format) {
    case StorageFormat::kDense: return dense_seconds_per_flop;
    case StorageFormat::kCoo: return coo_seconds_per_flop;
    case StorageFormat::kCsf: return csf_seconds_per_flop;
  }
  return dense_seconds_per_flop;
}

double Calibration::flop_word_ratio(StorageFormat format) const {
  if (!measured || beta_seconds_per_word <= 0.0) return 0.0;
  return seconds_per_flop(format) / beta_seconds_per_word;
}

double Calibration::latency_word_ratio() const {
  if (!measured || beta_seconds_per_word <= 0.0) return 0.0;
  return alpha_seconds / beta_seconds_per_word;
}

SparseKernelVariant Calibration::preferred_variant(
    StorageFormat format) const {
  if (!measured) return SparseKernelVariant::kAuto;
  double tiled = 0.0;
  double privatized = 0.0;
  switch (format) {
    case StorageFormat::kCoo:
      tiled = coo_tiled_seconds_per_flop;
      privatized = coo_privatized_seconds_per_flop;
      break;
    case StorageFormat::kCsf:
      tiled = csf_tiled_seconds_per_flop;
      privatized = csf_privatized_seconds_per_flop;
      break;
    case StorageFormat::kDense:
      return SparseKernelVariant::kAuto;
  }
  if (tiled <= 0.0 || privatized <= 0.0) return SparseKernelVariant::kAuto;
  return tiled <= privatized ? SparseKernelVariant::kTiled
                             : SparseKernelVariant::kPrivatized;
}

bool Calibration::operator==(const Calibration& o) const {
  return alpha_seconds == o.alpha_seconds &&
         beta_seconds_per_word == o.beta_seconds_per_word &&
         dense_seconds_per_flop == o.dense_seconds_per_flop &&
         coo_seconds_per_flop == o.coo_seconds_per_flop &&
         csf_seconds_per_flop == o.csf_seconds_per_flop &&
         coo_privatized_seconds_per_flop ==
             o.coo_privatized_seconds_per_flop &&
         coo_tiled_seconds_per_flop == o.coo_tiled_seconds_per_flop &&
         csf_privatized_seconds_per_flop ==
             o.csf_privatized_seconds_per_flop &&
         csf_tiled_seconds_per_flop == o.csf_tiled_seconds_per_flop &&
         measured == o.measured;
}

Calibration calibrate_machine(const CalibrateOptions& opts) {
  MTK_CHECK(opts.probe_words >= 1 && opts.small_copies >= 1 &&
                opts.kernel_dim >= 2 && opts.kernel_rank >= 1 &&
                opts.repetitions >= 1,
            "invalid calibration options");

  Calibration cal;

  // β: streaming-copy bandwidth. One word = one double, the simulator's
  // unit of communication.
  {
    std::vector<double> src(static_cast<std::size_t>(opts.probe_words), 1.0);
    std::vector<double> dst(src.size(), 0.0);
    const double secs = best_of(opts.repetitions, [&] {
      std::memcpy(dst.data(), src.data(), src.size() * sizeof(double));
      g_sink = dst[dst.size() / 2];
    });
    cal.beta_seconds_per_word =
        secs / static_cast<double>(opts.probe_words);
  }

  // α: per-call overhead of tiny copies — a proxy for per-message software
  // overhead (the simulated machine has no physical network to probe). The
  // copy goes through a volatile function pointer so the optimizer cannot
  // collapse the batch into a single store: each iteration pays a real
  // call + 8-word memcpy, which is the overhead being measured.
  {
    std::vector<double> src(8, 1.0);
    std::vector<double> dst(8, 0.0);
    void* (*volatile copy_fn)(void*, const void*, std::size_t) = std::memcpy;
    const double secs = best_of(opts.repetitions, [&] {
      for (index_t i = 0; i < opts.small_copies; ++i) {
        copy_fn(dst.data(), src.data(), 8 * sizeof(double));
      }
      g_sink = dst[0];
    });
    cal.alpha_seconds = secs / static_cast<double>(opts.small_copies);
  }

  // γ per backend: time the local kernel on a cubical synthetic problem
  // and divide by the modeled flop count, so γ · modeled-flops reproduces
  // the measured runtime by construction.
  Rng rng(opts.seed);
  const shape_t dims(3, opts.kernel_dim);
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_normal(d, opts.kernel_rank, rng));
  }
  const int order = static_cast<int>(dims.size());
  const double rank_d = static_cast<double>(opts.kernel_rank);

  {
    const DenseTensor dense = DenseTensor::random_normal(dims, rng);
    const double secs = best_of(opts.repetitions, [&] {
      const Matrix b = mttkrp(dense, factors, 0, {});
      g_sink = b(0, 0);
    });
    const double flops = static_cast<double>(dense.size()) * rank_d *
                         modeled_flops_per_value(StorageFormat::kDense, order);
    cal.dense_seconds_per_flop = secs / flops;
  }
  {
    const SparseTensor coo =
        SparseTensor::random_sparse(dims, opts.sparse_density, rng);
    if (coo.nnz() > 0) {
      const double coo_flops =
          static_cast<double>(coo.nnz()) * rank_d *
          modeled_flops_per_value(StorageFormat::kCoo, order);
      const double coo_secs = best_of(opts.repetitions, [&] {
        const Matrix b = mttkrp_coo(coo, factors, 0);
        g_sink = b(0, 0);
      });
      cal.coo_seconds_per_flop = coo_secs / coo_flops;

      const CsfTensor csf = CsfTensor::from_coo(coo);
      const double csf_flops =
          static_cast<double>(coo.nnz()) * rank_d *
          modeled_flops_per_value(StorageFormat::kCsf, order);
      const double csf_secs = best_of(opts.repetitions, [&] {
        const Matrix b = mttkrp_csf(csf, factors, 0);
        g_sink = b(0, 0);
      });
      cal.csf_seconds_per_flop = csf_secs / csf_flops;

      // Per-variant parallel rates at the host's OpenMP thread count: the
      // measured tiled-vs-privatized gap steers the planner's kernel
      // schedule choice the same way the serial γ gap steers the backend.
      const auto variant_rate = [&](auto&& run, double flops) {
        return best_of(opts.repetitions, [&] {
          const Matrix b = run();
          g_sink = b(0, 0);
        }) / flops;
      };
      cal.coo_privatized_seconds_per_flop = variant_rate(
          [&] {
            return mttkrp_coo(coo, factors, 0, /*parallel=*/true,
                              SparseKernelVariant::kPrivatized);
          },
          coo_flops);
      cal.coo_tiled_seconds_per_flop = variant_rate(
          [&] {
            return mttkrp_coo(coo, factors, 0, /*parallel=*/true,
                              SparseKernelVariant::kTiled);
          },
          coo_flops);
      cal.csf_privatized_seconds_per_flop = variant_rate(
          [&] {
            return mttkrp_csf(csf, factors, 0, /*parallel=*/true,
                              SparseKernelVariant::kPrivatized);
          },
          csf_flops);
      cal.csf_tiled_seconds_per_flop = variant_rate(
          [&] {
            return mttkrp_csf(csf, factors, 0, /*parallel=*/true,
                              SparseKernelVariant::kTiled);
          },
          csf_flops);
    } else {
      cal.coo_seconds_per_flop = cal.dense_seconds_per_flop;
      cal.csf_seconds_per_flop = cal.dense_seconds_per_flop;
      cal.coo_privatized_seconds_per_flop = cal.dense_seconds_per_flop;
      cal.coo_tiled_seconds_per_flop = cal.dense_seconds_per_flop;
      cal.csf_privatized_seconds_per_flop = cal.dense_seconds_per_flop;
      cal.csf_tiled_seconds_per_flop = cal.dense_seconds_per_flop;
    }
  }

  cal.measured = true;
  return cal;
}

void print_calibration(const Calibration& cal, std::FILE* out) {
  std::fprintf(out, "calibration    : alpha %.3e s/msg, beta %.3e s/word "
                    "(%.2f GB/s)\n",
               cal.alpha_seconds, cal.beta_seconds_per_word,
               cal.beta_seconds_per_word > 0.0
                   ? 8.0e-9 / cal.beta_seconds_per_word
                   : 0.0);
  std::fprintf(out, "  gamma s/flop : dense %.3e, coo %.3e, csf %.3e\n",
               cal.dense_seconds_per_flop, cal.coo_seconds_per_flop,
               cal.csf_seconds_per_flop);
  std::fprintf(out, "  ratios       : latency/word %.3f, flop/word "
                    "dense %.4f coo %.4f csf %.4f\n",
               cal.latency_word_ratio(),
               cal.flop_word_ratio(StorageFormat::kDense),
               cal.flop_word_ratio(StorageFormat::kCoo),
               cal.flop_word_ratio(StorageFormat::kCsf));
  std::fprintf(out, "  variants     : coo priv %.3e tiled %.3e -> %s, "
                    "csf priv %.3e tiled %.3e -> %s\n",
               cal.coo_privatized_seconds_per_flop,
               cal.coo_tiled_seconds_per_flop,
               to_string(cal.preferred_variant(StorageFormat::kCoo)),
               cal.csf_privatized_seconds_per_flop,
               cal.csf_tiled_seconds_per_flop,
               to_string(cal.preferred_variant(StorageFormat::kCsf)));
}

void write_calibration(std::ostream& out, const Calibration& cal) {
  char line[384];
  std::snprintf(line, sizeof line,
                "calibration %d %a %a %a %a %a %a %a %a %a\n",
                cal.measured ? 1 : 0, cal.alpha_seconds,
                cal.beta_seconds_per_word, cal.dense_seconds_per_flop,
                cal.coo_seconds_per_flop, cal.csf_seconds_per_flop,
                cal.coo_privatized_seconds_per_flop,
                cal.coo_tiled_seconds_per_flop,
                cal.csf_privatized_seconds_per_flop,
                cal.csf_tiled_seconds_per_flop);
  out << line;
}

bool parse_calibration(const std::string& payload, Calibration& cal) {
  // Tokens are parsed with strtod (istream extraction does not reliably
  // accept the hex-float spellings the writer emits).
  std::istringstream in(payload);
  std::string token;
  if (!(in >> token)) return false;
  if (token != "0" && token != "1") return false;
  Calibration parsed;
  parsed.measured = token == "1";
  double* fields[] = {&parsed.alpha_seconds, &parsed.beta_seconds_per_word,
                      &parsed.dense_seconds_per_flop,
                      &parsed.coo_seconds_per_flop,
                      &parsed.csf_seconds_per_flop,
                      &parsed.coo_privatized_seconds_per_flop,
                      &parsed.coo_tiled_seconds_per_flop,
                      &parsed.csf_privatized_seconds_per_flop,
                      &parsed.csf_tiled_seconds_per_flop};
  for (double* field : fields) {
    if (!(in >> token)) return false;
    char* end = nullptr;
    *field = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
  }
  cal = parsed;
  return true;
}

}  // namespace mtk
