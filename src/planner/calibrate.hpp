// Measured machine calibration for the planner's α-β-γ cost model.
//
// The planner's ranking objective is a modeled execution time
//
//   T = β · words  +  α · messages  +  γ(backend) · flops,
//
// normalized by β so the default score stays in "word" units:
// score = words + (α/β) · messages + (γ/β) · flops. Before this layer the
// two ratios were hand-set knobs (`flop_word_ratio`, `latency_word_ratio`);
// `calibrate_machine` derives them from timing probes on the actual host:
//
//   β — inverse streaming-copy bandwidth (a large memcpy, best of a few),
//   α — per-call overhead of a batch of tiny copies (the software-overhead
//       proxy for per-message latency on the simulated machine; no real
//       network exists here, which is documented rather than papered over),
//   γ — seconds per modeled flop of the local dense / COO / CSF MTTKRP
//       kernels, measured per backend so the CSF-vs-COO trade-off in the
//       planner reflects this machine, not the built-in constants.
//
// The calibration also times the *parallel* sparse kernels once per
// reduction schedule (privatized scratch-and-merge vs owner-computed
// tiles, src/mttkrp/sparse_kernels.hpp) so `plan_mttkrp` can pick
// tiled-vs-privatized per backend from measured rates instead of a
// hardcoded heuristic.
//
// A Calibration serializes into the persistent plan-cache file (hex floats,
// bit-exact round-trip) so one `mttkrp_cli --calibrate` run serves every
// later planning invocation on the same host.
#pragma once

#include <cstdio>
#include <iosfwd>

#include "src/mttkrp/dispatch.hpp"
#include "src/support/index.hpp"

namespace mtk {

struct Calibration {
  double alpha_seconds = 0.0;          // per-message overhead
  double beta_seconds_per_word = 0.0;  // inverse streaming-copy bandwidth
  double dense_seconds_per_flop = 0.0;
  double coo_seconds_per_flop = 0.0;
  double csf_seconds_per_flop = 0.0;
  // Parallel sparse-kernel rates per reduction schedule, measured at the
  // host's OpenMP thread count (equal to the serial rates on one thread).
  double coo_privatized_seconds_per_flop = 0.0;
  double coo_tiled_seconds_per_flop = 0.0;
  double csf_privatized_seconds_per_flop = 0.0;
  double csf_tiled_seconds_per_flop = 0.0;
  bool measured = false;

  double seconds_per_flop(StorageFormat format) const;
  // γ/β and α/β — the planner's score ratios. Both are 0 when the
  // calibration is unmeasured or degenerate (β == 0), which reduces the
  // score to pure communication, the paper's objective.
  double flop_word_ratio(StorageFormat format) const;
  double latency_word_ratio() const;

  // The measured winner between the tiled and privatized parallel
  // schedules for a sparse backend; kAuto when unmeasured, dense, or the
  // probes are degenerate (the kernels then keep their own heuristic).
  SparseKernelVariant preferred_variant(StorageFormat format) const;

  bool operator==(const Calibration& o) const;
  bool operator!=(const Calibration& o) const { return !(*this == o); }
};

// The modeled multiply-add count per stored value (as a multiple of the
// factor column count) that γ is measured against: the COO kernel touches
// one row of each of the N factors per nonzero; CSF's fiber sharing
// amortizes roughly half the non-leaf row loads; the dense two-step kernel
// is per-element times N. Shared by the calibration probes and the
// planner's compute model so the measured γ and the predicted flops cancel
// consistently.
double modeled_flops_per_value(StorageFormat format, int order);

struct CalibrateOptions {
  index_t probe_words = index_t{1} << 21;  // streaming-copy probe length
  index_t small_copies = 4096;             // tiny-copy batch for α
  index_t kernel_dim = 48;                 // cubical probe extent per mode
  index_t kernel_rank = 16;
  double sparse_density = 0.05;
  int repetitions = 3;  // keep the fastest timing of this many
  std::uint64_t seed = 20180521;
};

Calibration calibrate_machine(const CalibrateOptions& opts = {});

void print_calibration(const Calibration& cal, std::FILE* out);

// Line-oriented serialization used inside the plan-cache file: one
// "calibration ..." line with hex-float fields (bit-exact round-trip).
void write_calibration(std::ostream& out, const Calibration& cal);
// Parses the payload of one calibration line (everything after the tag).
// Returns false — leaving `cal` untouched — on any malformed field.
bool parse_calibration(const std::string& payload, Calibration& cal);

}  // namespace mtk
