#include "src/planner/plan_cache.hpp"

#include <algorithm>

namespace mtk {

namespace {

struct Fnv1a {
  std::uint64_t state = 1469598103934665603ull;

  void mix_bytes(const void* data, std::size_t len) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      state ^= bytes[i];
      state *= 1099511628211ull;
    }
  }
  void mix(std::uint64_t v) { mix_bytes(&v, sizeof v); }
  void mix(double v) { mix_bytes(&v, sizeof v); }
};

}  // namespace

std::uint64_t plan_cache_key(const StoredTensor& x, index_t rank,
                             const PlannerOptions& opts) {
  MTK_CHECK(!x.empty(), "plan_cache_key: empty tensor handle");
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(x.format()));
  for (index_t d : x.dims()) h.mix(static_cast<std::uint64_t>(d));
  h.mix(static_cast<std::uint64_t>(rank));
  h.mix(static_cast<std::uint64_t>(x.stored_values()));

  // Nonzero-profile fingerprint: an evenly strided coordinate sample. COO
  // storage is sorted, so the sample is deterministic for a given tensor.
  if (x.format() == StorageFormat::kCoo) {
    const SparseTensor& coo = x.as_coo();
    const index_t samples = std::min<index_t>(coo.nnz(), 64);
    if (samples > 0) {
      const index_t stride = std::max<index_t>(coo.nnz() / samples, 1);
      for (index_t s = 0; s < samples; ++s) {
        const index_t q = std::min(s * stride, coo.nnz() - 1);
        for (int k = 0; k < coo.order(); ++k) {
          h.mix(static_cast<std::uint64_t>(coo.index(k, q)));
        }
      }
    }
  } else if (x.format() == StorageFormat::kCsf) {
    // Mode order, per-level node counts, and a strided sample of each
    // level's stored fiber indices: captures coordinate placement (not
    // just the fiber-count profile) without an O(nnz) COO expansion.
    const CsfTensor& csf = x.as_csf();
    for (int mode : csf.mode_order()) {
      h.mix(static_cast<std::uint64_t>(mode));
    }
    for (int level = 0; level < csf.order(); ++level) {
      const std::vector<index_t>& fids = csf.fids(level);
      const index_t nodes = static_cast<index_t>(fids.size());
      h.mix(static_cast<std::uint64_t>(nodes));
      const index_t samples = std::min<index_t>(nodes, 64);
      if (samples == 0) continue;
      const index_t stride = std::max<index_t>(nodes / samples, 1);
      for (index_t s = 0; s < samples; ++s) {
        const index_t q = std::min(s * stride, nodes - 1);
        h.mix(static_cast<std::uint64_t>(fids[static_cast<std::size_t>(q)]));
      }
    }
  }

  h.mix(static_cast<std::uint64_t>(opts.procs));
  h.mix(static_cast<std::uint64_t>(opts.mode));
  h.mix(static_cast<std::uint64_t>(opts.workload));
  h.mix(static_cast<std::uint64_t>(opts.consider_general));
  h.mix(static_cast<std::uint64_t>(opts.consider_medium_grained));
  h.mix(static_cast<std::uint64_t>(opts.top_k));
  h.mix(static_cast<std::uint64_t>(opts.shortlist));
  h.mix(static_cast<std::uint64_t>(opts.exact_rank_cap));
  h.mix(opts.flop_word_ratio);
  h.mix(static_cast<std::uint64_t>(opts.reuse_count));
  return h.state;
}

bool PlanCache::KeyFields::operator==(const KeyFields& other) const {
  return dims == other.dims && rank == other.rank &&
         format == other.format && nnz == other.nnz &&
         procs == other.procs && mode == other.mode &&
         workload == other.workload &&
         consider_general == other.consider_general &&
         consider_medium_grained == other.consider_medium_grained &&
         top_k == other.top_k && shortlist == other.shortlist &&
         exact_rank_cap == other.exact_rank_cap &&
         flop_word_ratio == other.flop_word_ratio &&
         reuse_count == other.reuse_count;
}

PlanCache::KeyFields PlanCache::make_key_fields(const StoredTensor& x,
                                                index_t rank,
                                                const PlannerOptions& opts) {
  KeyFields k;
  k.dims = x.dims();
  k.rank = rank;
  k.format = x.format();
  k.nnz = x.stored_values();
  k.procs = opts.procs;
  k.mode = opts.mode;
  k.workload = opts.workload;
  k.consider_general = opts.consider_general;
  k.consider_medium_grained = opts.consider_medium_grained;
  k.top_k = opts.top_k;
  k.shortlist = opts.shortlist;
  k.exact_rank_cap = opts.exact_rank_cap;
  k.flop_word_ratio = opts.flop_word_ratio;
  k.reuse_count = opts.reuse_count;
  return k;
}

std::shared_ptr<const PlanReport> PlanCache::get_or_plan(
    const StoredTensor& x, index_t rank, const PlannerOptions& opts) {
  const std::uint64_t key = plan_cache_key(x, rank, opts);
  KeyFields fields = make_key_fields(x, rank, opts);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end() && it->second.key == fields) {
      ++hits_;
      return it->second.report;
    }
  }
  // Plan outside the lock: planning is the expensive part, and concurrent
  // misses on the same key just race to insert identical reports. A hash
  // slot whose stored fields mismatch (a cross-problem collision) is
  // overwritten — correctness over retention.
  auto report = std::make_shared<const PlanReport>(
      plan_mttkrp(x, rank, opts));
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  auto& entry = map_[key];
  if (entry.report == nullptr || !(entry.key == fields)) {
    entry = Entry{std::move(fields), std::move(report)};
  }
  return entry.report;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::size_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

}  // namespace mtk
