#include "src/planner/plan_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace mtk {

namespace {

struct Fnv1a {
  std::uint64_t state = 1469598103934665603ull;

  void mix_bytes(const void* data, std::size_t len) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      state ^= bytes[i];
      state *= 1099511628211ull;
    }
  }
  void mix(std::uint64_t v) { mix_bytes(&v, sizeof v); }
  void mix(double v) { mix_bytes(&v, sizeof v); }
};

}  // namespace

std::uint64_t plan_cache_key(const StoredTensor& x, index_t rank,
                             const PlannerOptions& opts) {
  MTK_CHECK(!x.empty(), "plan_cache_key: empty tensor handle");
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(x.format()));
  for (index_t d : x.dims()) h.mix(static_cast<std::uint64_t>(d));
  h.mix(static_cast<std::uint64_t>(rank));
  h.mix(static_cast<std::uint64_t>(x.stored_values()));

  // Nonzero-profile fingerprint: an evenly strided coordinate sample. COO
  // storage is sorted, so the sample is deterministic for a given tensor.
  if (x.format() == StorageFormat::kCoo) {
    const SparseTensor& coo = x.as_coo();
    const index_t samples = std::min<index_t>(coo.nnz(), 64);
    if (samples > 0) {
      const index_t stride = std::max<index_t>(coo.nnz() / samples, 1);
      for (index_t s = 0; s < samples; ++s) {
        const index_t q = std::min(s * stride, coo.nnz() - 1);
        for (int k = 0; k < coo.order(); ++k) {
          h.mix(static_cast<std::uint64_t>(coo.index(k, q)));
        }
      }
    }
  } else if (x.format() == StorageFormat::kCsf) {
    // Mode order, per-level node counts, and a strided sample of each
    // level's stored fiber indices: captures coordinate placement (not
    // just the fiber-count profile) without an O(nnz) COO expansion.
    const CsfTensor& csf = x.as_csf();
    for (int mode : csf.mode_order()) {
      h.mix(static_cast<std::uint64_t>(mode));
    }
    for (int level = 0; level < csf.order(); ++level) {
      const std::vector<index_t>& fids = csf.fids(level);
      const index_t nodes = static_cast<index_t>(fids.size());
      h.mix(static_cast<std::uint64_t>(nodes));
      const index_t samples = std::min<index_t>(nodes, 64);
      if (samples == 0) continue;
      const index_t stride = std::max<index_t>(nodes / samples, 1);
      for (index_t s = 0; s < samples; ++s) {
        const index_t q = std::min(s * stride, nodes - 1);
        h.mix(static_cast<std::uint64_t>(fids[static_cast<std::size_t>(q)]));
      }
    }
  }

  h.mix(static_cast<std::uint64_t>(opts.procs));
  h.mix(static_cast<std::uint64_t>(opts.mode));
  h.mix(static_cast<std::uint64_t>(opts.workload));
  h.mix(static_cast<std::uint64_t>(opts.consider_general));
  h.mix(static_cast<std::uint64_t>(opts.consider_medium_grained));
  h.mix(static_cast<std::uint64_t>(opts.top_k));
  h.mix(static_cast<std::uint64_t>(opts.shortlist));
  h.mix(static_cast<std::uint64_t>(opts.exact_rank_cap));
  h.mix(opts.flop_word_ratio);
  h.mix(opts.latency_word_ratio);
  h.mix(static_cast<std::uint64_t>(opts.machine.measured));
  h.mix(opts.machine.alpha_seconds);
  h.mix(opts.machine.beta_seconds_per_word);
  h.mix(opts.machine.dense_seconds_per_flop);
  h.mix(opts.machine.coo_seconds_per_flop);
  h.mix(opts.machine.csf_seconds_per_flop);
  h.mix(opts.machine.coo_privatized_seconds_per_flop);
  h.mix(opts.machine.coo_tiled_seconds_per_flop);
  h.mix(opts.machine.csf_privatized_seconds_per_flop);
  h.mix(opts.machine.csf_tiled_seconds_per_flop);
  h.mix(static_cast<std::uint64_t>(opts.reuse_count));
  // Sketch knobs enter the fingerprint only when set: exact-execution
  // queries (epsilon = 0) keep the pre-sketch hash, so entries migrated
  // from a version-2 file — written before these knobs existed — still hit.
  if (opts.epsilon != 0.0 || opts.sample_count != 0) {
    h.mix(opts.epsilon);
    h.mix(static_cast<std::uint64_t>(opts.sample_count));
  }
  return h.state;
}

bool PlanCache::KeyFields::operator==(const KeyFields& other) const {
  return dims == other.dims && rank == other.rank &&
         format == other.format && nnz == other.nnz &&
         procs == other.procs && mode == other.mode &&
         workload == other.workload &&
         consider_general == other.consider_general &&
         consider_medium_grained == other.consider_medium_grained &&
         top_k == other.top_k && shortlist == other.shortlist &&
         exact_rank_cap == other.exact_rank_cap &&
         flop_word_ratio == other.flop_word_ratio &&
         latency_word_ratio == other.latency_word_ratio &&
         machine == other.machine && reuse_count == other.reuse_count &&
         epsilon == other.epsilon && sample_count == other.sample_count;
}

PlanCache::KeyFields PlanCache::make_key_fields(const StoredTensor& x,
                                                index_t rank,
                                                const PlannerOptions& opts) {
  KeyFields k;
  k.dims = x.dims();
  k.rank = rank;
  k.format = x.format();
  k.nnz = x.stored_values();
  k.procs = opts.procs;
  k.mode = opts.mode;
  k.workload = opts.workload;
  k.consider_general = opts.consider_general;
  k.consider_medium_grained = opts.consider_medium_grained;
  k.top_k = opts.top_k;
  k.shortlist = opts.shortlist;
  k.exact_rank_cap = opts.exact_rank_cap;
  k.flop_word_ratio = opts.flop_word_ratio;
  k.latency_word_ratio = opts.latency_word_ratio;
  k.machine = opts.machine;
  k.reuse_count = opts.reuse_count;
  k.epsilon = opts.epsilon;
  k.sample_count = opts.sample_count;
  return k;
}

std::shared_ptr<const PlanReport> PlanCache::get_or_plan(
    const StoredTensor& x, index_t rank, const PlannerOptions& opts) {
  Span span(SpanCategory::kPlanner, "plan_cache.get_or_plan");
  static Counter& hit_count =
      MetricsRegistry::global().counter("mtk.plan.cache.hits");
  static Counter& miss_count =
      MetricsRegistry::global().counter("mtk.plan.cache.misses");
  const std::uint64_t key = plan_cache_key(x, rank, opts);
  KeyFields fields = make_key_fields(x, rank, opts);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end() && it->second.key == fields) {
      ++hits_;
      hit_count.add();
      span.arg("hit", 1);
      return it->second.report;
    }
  }
  span.arg("hit", 0);
  // Plan outside the lock: planning is the expensive part, and concurrent
  // misses on the same key just race to insert identical reports. A hash
  // slot whose stored fields mismatch (a cross-problem collision) is
  // overwritten — correctness over retention.
  auto report = std::make_shared<const PlanReport>(
      plan_mttkrp(x, rank, opts));
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  miss_count.add();
  auto& entry = map_[key];
  if (entry.report == nullptr || !(entry.key == fields)) {
    entry = Entry{std::move(fields), std::move(report)};
  }
  return entry.report;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::size_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

// ---------------------------------------------------------------------------
// On-disk persistence. Line-oriented text; every double is written as a hex
// float (%a) so scores, ratios, and calibration parameters round-trip
// bit-exactly — the load-time KeyFields comparison relies on that.

namespace {

void put(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, " %a", v);
  out << buf;
}
void put(std::ostream& out, index_t v) { out << ' ' << v; }
void put(std::ostream& out, int v) { out << ' ' << v; }
void put(std::ostream& out, bool v) { out << ' ' << (v ? 1 : 0); }

// Whitespace tokenizer with typed, range-checked extraction; any failure
// latches `ok = false` and every later read also fails, so parse code can
// run straight-line and check once.
struct TokenParser {
  std::istringstream in;
  bool ok = true;

  explicit TokenParser(const std::string& line) : in(line) {}

  std::string word() {
    std::string w;
    if (!(in >> w)) ok = false;
    return w;
  }
  double dbl() {
    const std::string w = word();
    if (!ok) return 0.0;
    char* end = nullptr;
    const double v = std::strtod(w.c_str(), &end);
    if (end == nullptr || *end != '\0') ok = false;
    return v;
  }
  long long ll() {
    const std::string w = word();
    if (!ok) return 0;
    char* end = nullptr;
    const long long v = std::strtoll(w.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || w.empty()) ok = false;
    return v;
  }
  index_t idx() { return static_cast<index_t>(ll()); }
  int i32() { return static_cast<int>(ll()); }
  bool flag() {
    const long long v = ll();
    if (v != 0 && v != 1) ok = false;
    return v == 1;
  }
  // Enum decoded from its serialized integer, validated against the
  // inclusive maximum enumerator.
  template <typename E>
  E enum_of(int max_value) {
    const long long v = ll();
    if (v < 0 || v > max_value) ok = false;
    return static_cast<E>(v);
  }
  bool done() {
    std::string rest;
    return ok && !(in >> rest);
  }
};

}  // namespace

bool PlanCache::save(const std::string& path,
                     const Calibration* calibration, int version) const {
  MTK_CHECK(version == kFileVersion || version == kLegacyFileVersion,
            "unsupported plan-cache file version ", version);
  const bool v3 = version >= 3;
  std::lock_guard<std::mutex> lock(mutex_);

  // Crash safety: the whole file is composed in memory, sealed with a
  // whole-file checksum trailer (which, unlike the per-entry sums, also
  // covers the header and calibration line), written to a sibling temp
  // file, and published with an atomic rename. A crash mid-save leaves the
  // previous file intact; a torn temp file is never visible under `path`.
  std::ostringstream out;
  out << "mtkplancache " << version << "\n";
  if (calibration != nullptr) {
    write_calibration(out, *calibration);
  }
  for (const auto& [hash, entry] : map_) {
    out << "entry " << hash << "\n";

    // The entry body is built first so a checksum over its exact bytes can
    // be appended as the entry's last line; the loader recomputes it and
    // treats any disagreement as corruption. The fingerprint hash alone
    // cannot catch payload damage — it is computed from the *problem*,
    // not from the stored plans.
    std::ostringstream body;

    const KeyFields& k = entry.key;
    body << "key";
    put(body, static_cast<int>(k.dims.size()));
    for (index_t d : k.dims) put(body, d);
    put(body, k.rank);
    put(body, static_cast<int>(k.format));
    put(body, k.nnz);
    put(body, k.procs);
    put(body, k.mode);
    put(body, static_cast<int>(k.workload));
    put(body, k.consider_general);
    put(body, k.consider_medium_grained);
    put(body, k.top_k);
    put(body, k.shortlist);
    put(body, k.exact_rank_cap);
    put(body, k.flop_word_ratio);
    put(body, k.latency_word_ratio);
    put(body, k.machine.measured);
    put(body, k.machine.alpha_seconds);
    put(body, k.machine.beta_seconds_per_word);
    put(body, k.machine.dense_seconds_per_flop);
    put(body, k.machine.coo_seconds_per_flop);
    put(body, k.machine.csf_seconds_per_flop);
    put(body, k.machine.coo_privatized_seconds_per_flop);
    put(body, k.machine.coo_tiled_seconds_per_flop);
    put(body, k.machine.csf_privatized_seconds_per_flop);
    put(body, k.machine.csf_tiled_seconds_per_flop);
    put(body, k.reuse_count);
    if (v3) {
      put(body, k.epsilon);
      put(body, k.sample_count);
    }
    body << "\n";

    const PlanReport& r = *entry.report;
    body << "report";
    put(body, static_cast<int>(r.dims.size()));
    for (index_t d : r.dims) put(body, d);
    put(body, r.rank);
    put(body, r.procs);
    put(body, static_cast<int>(r.input_format));
    put(body, r.nnz);
    put(body, static_cast<int>(r.ranked.size()));
    body << "\n";

    for (const ExecutionPlan& plan : r.ranked) {
      body << "plan";
      put(body, static_cast<int>(plan.algo));
      put(body, static_cast<int>(plan.backend));
      put(body, static_cast<int>(plan.scheme));
      put(body, static_cast<int>(plan.kernel_variant));
      put(body, static_cast<int>(plan.collectives.tensor));
      put(body, static_cast<int>(plan.collectives.factor));
      put(body, static_cast<int>(plan.collectives.output));
      put(body, static_cast<int>(plan.collectives.gram));
      put(body, static_cast<int>(plan.grid.size()));
      for (int e : plan.grid) put(body, e);
      put(body, plan.comm.words);
      put(body, plan.comm.messages);
      put(body, plan.comm.tensor_words);
      put(body, plan.comm.factor_words);
      put(body, plan.comm.output_words);
      put(body, plan.comm.gram_words);
      put(body, plan.comm.tensor_messages);
      put(body, plan.comm.factor_messages);
      put(body, plan.comm.output_messages);
      put(body, plan.comm.gram_messages);
      put(body, plan.comm.exact);
      put(body, plan.compute_flops);
      put(body, plan.score);
      put(body, plan.lower_bound);
      put(body, plan.optimality_ratio);
      put(body, static_cast<int>(plan.nnz_stats.per_block.size()));
      for (index_t b : plan.nnz_stats.per_block) put(body, b);
      put(body, plan.nnz_stats.max_nnz);
      put(body, plan.nnz_stats.min_nnz);
      put(body, plan.nnz_stats.mean_nnz);
      if (v3) {
        put(body, static_cast<int>(plan.path));
        put(body, plan.sample_count);
        put(body, plan.predicted_error);
      }
      body << "\n";
    }

    const std::string text = body.str();
    Fnv1a sum;
    sum.mix_bytes(text.data(), text.size());
    out << text << "sum " << sum.state << "\n";
  }
  out << "end\n";

  // Seal and publish. The trailer checksums every byte up to and including
  // the "end" line; the loader recomputes it and treats any disagreement —
  // torn write, bit rot, truncation past "end" — as a cold cache.
  std::string text = out.str();
  Fnv1a file_sum;
  file_sum.mix_bytes(text.data(), text.size());
  std::ostringstream trailer;
  trailer << "filesum " << file_sum.state << "\n";
  text += trailer.str();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc | std::ios::binary);
    if (!file) return false;
    file.write(text.data(), static_cast<std::streamsize>(text.size()));
    file.flush();  // surface deferred write errors (e.g. disk full) here,
                   // before the rename publishes the file
    if (!file.good()) {
      file.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool PlanCache::load(const std::string& path, Calibration* calibration) {
  // Whatever happens, the previous contents are gone: a reload replaces.
  clear();

  std::ifstream in(path);
  if (!in) return false;

  std::string line;
  // Runs over every raw line through "end", mirroring the byte stream
  // save() sealed with the "filesum" trailer; verified once "end" is seen.
  Fnv1a file_sum;
  const auto read_raw = [&](std::string& l) -> bool {
    if (!std::getline(in, l)) return false;
    file_sum.mix_bytes(l.data(), l.size());
    file_sum.mix_bytes("\n", 1);
    return true;
  };

  bool v3 = true;
  if (!read_raw(line)) return false;
  {
    TokenParser p(line);
    if (p.word() != "mtkplancache") return false;
    const long long version = p.ll();
    if (!p.done() ||
        (version != kFileVersion && version != kLegacyFileVersion)) {
      return false;
    }
    v3 = version >= 3;
  }

  std::unordered_map<std::uint64_t, Entry> loaded;
  Calibration loaded_cal;
  bool have_cal = false;
  bool saw_end = false;

  while (read_raw(line)) {
    TokenParser p(line);
    const std::string tag = p.word();
    if (!p.ok) {
      if (line.empty()) continue;  // stray blank lines are harmless
      return false;
    }
    if (tag == "end") {
      if (!p.done()) return false;
      saw_end = true;
      break;
    }
    if (tag == "calibration") {
      std::string payload;
      std::getline(p.in, payload);
      if (!parse_calibration(payload, loaded_cal)) return false;
      have_cal = true;
      continue;
    }
    if (tag != "entry") return false;
    char* end = nullptr;
    const std::string hash_word = p.word();
    const std::uint64_t hash =
        std::strtoull(hash_word.c_str(), &end, 10);
    if (!p.done() || end == nullptr || *end != '\0' || hash_word.empty()) {
      return false;
    }

    // Every body line feeds the checksum verified at the entry's end.
    Fnv1a sum;
    const auto next_body_line = [&]() -> bool {
      if (!read_raw(line)) return false;
      sum.mix_bytes(line.data(), line.size());
      sum.mix_bytes("\n", 1);
      return true;
    };

    // --- key line ---------------------------------------------------------
    if (!next_body_line()) return false;
    TokenParser kp(line);
    if (kp.word() != "key") return false;
    KeyFields k;
    const int nd = kp.i32();
    if (!kp.ok || nd < 0 || nd > 64) return false;
    k.dims.resize(static_cast<std::size_t>(nd));
    for (index_t& d : k.dims) d = kp.idx();
    k.rank = kp.idx();
    k.format = kp.enum_of<StorageFormat>(2);
    k.nnz = kp.idx();
    k.procs = kp.i32();
    k.mode = kp.i32();
    k.workload = kp.enum_of<PlanWorkload>(2);
    k.consider_general = kp.flag();
    k.consider_medium_grained = kp.flag();
    k.top_k = kp.i32();
    k.shortlist = kp.i32();
    k.exact_rank_cap = kp.i32();
    k.flop_word_ratio = kp.dbl();
    k.latency_word_ratio = kp.dbl();
    k.machine.measured = kp.flag();
    k.machine.alpha_seconds = kp.dbl();
    k.machine.beta_seconds_per_word = kp.dbl();
    k.machine.dense_seconds_per_flop = kp.dbl();
    k.machine.coo_seconds_per_flop = kp.dbl();
    k.machine.csf_seconds_per_flop = kp.dbl();
    k.machine.coo_privatized_seconds_per_flop = kp.dbl();
    k.machine.coo_tiled_seconds_per_flop = kp.dbl();
    k.machine.csf_privatized_seconds_per_flop = kp.dbl();
    k.machine.csf_tiled_seconds_per_flop = kp.dbl();
    k.reuse_count = kp.i32();
    if (v3) {
      k.epsilon = kp.dbl();
      k.sample_count = kp.idx();
    }  // v2: both stay at their exact-execution defaults (0)
    if (!kp.done()) return false;

    // --- report line ------------------------------------------------------
    if (!next_body_line()) return false;
    TokenParser rp(line);
    if (rp.word() != "report") return false;
    auto report = std::make_shared<PlanReport>();
    const int rd = rp.i32();
    if (!rp.ok || rd < 0 || rd > 64) return false;
    report->dims.resize(static_cast<std::size_t>(rd));
    for (index_t& d : report->dims) d = rp.idx();
    report->rank = rp.idx();
    report->procs = rp.i32();
    report->input_format = rp.enum_of<StorageFormat>(2);
    report->nnz = rp.idx();
    const int nplans = rp.i32();
    if (!rp.done() || nplans < 1 || nplans > 4096) return false;

    // --- plan lines -------------------------------------------------------
    for (int i = 0; i < nplans; ++i) {
      if (!next_body_line()) return false;
      TokenParser pp(line);
      if (pp.word() != "plan") return false;
      ExecutionPlan plan;
      plan.algo = pp.enum_of<ParAlgo>(2);
      plan.backend = pp.enum_of<StorageFormat>(2);
      plan.scheme = pp.enum_of<SparsePartitionScheme>(1);
      plan.kernel_variant = pp.enum_of<SparseKernelVariant>(3);
      plan.collectives.tensor = pp.enum_of<CollectiveKind>(1);
      plan.collectives.factor = pp.enum_of<CollectiveKind>(1);
      plan.collectives.output = pp.enum_of<CollectiveKind>(1);
      plan.collectives.gram = pp.enum_of<CollectiveKind>(1);
      const int ng = pp.i32();
      if (!pp.ok || ng < 0 || ng > 65) return false;
      plan.grid.resize(static_cast<std::size_t>(ng));
      long long grid_procs = 1;
      for (int& e : plan.grid) {
        e = pp.i32();
        if (e < 1) return false;
        grid_procs *= e;
      }
      // Semantic cross-check in addition to the checksum: a plan's grid
      // must describe exactly the key's processor count.
      if (pp.ok && grid_procs != k.procs) return false;
      plan.comm.words = pp.dbl();
      plan.comm.messages = pp.dbl();
      plan.comm.tensor_words = pp.dbl();
      plan.comm.factor_words = pp.dbl();
      plan.comm.output_words = pp.dbl();
      plan.comm.gram_words = pp.dbl();
      plan.comm.tensor_messages = pp.dbl();
      plan.comm.factor_messages = pp.dbl();
      plan.comm.output_messages = pp.dbl();
      plan.comm.gram_messages = pp.dbl();
      plan.comm.exact = pp.flag();
      plan.compute_flops = pp.dbl();
      plan.score = pp.dbl();
      plan.lower_bound = pp.dbl();
      plan.optimality_ratio = pp.dbl();
      const int nb = pp.i32();
      if (!pp.ok || nb < 0 || nb > (1 << 22)) return false;
      plan.nnz_stats.per_block.resize(static_cast<std::size_t>(nb));
      for (index_t& b : plan.nnz_stats.per_block) b = pp.idx();
      plan.nnz_stats.max_nnz = pp.idx();
      plan.nnz_stats.min_nnz = pp.idx();
      plan.nnz_stats.mean_nnz = pp.dbl();
      if (v3) {
        plan.path = pp.enum_of<ExecutionPath>(1);
        plan.sample_count = pp.idx();
        plan.predicted_error = pp.dbl();
        if (plan.sample_count < 0 ||
            (plan.path == ExecutionPath::kExact && plan.sample_count != 0)) {
          return false;
        }
      }  // v2: exact path, no sample — the only path that version knew
      if (!pp.done()) return false;
      report->ranked.push_back(std::move(plan));
    }

    // --- checksum line ----------------------------------------------------
    if (!read_raw(line)) return false;
    TokenParser sp(line);
    if (sp.word() != "sum") return false;
    const std::string sum_word = sp.word();
    char* sum_end = nullptr;
    const std::uint64_t stored_sum =
        std::strtoull(sum_word.c_str(), &sum_end, 10);
    if (!sp.done() || sum_end == nullptr || *sum_end != '\0' ||
        sum_word.empty() || stored_sum != sum.state) {
      return false;
    }

    loaded[hash] = Entry{std::move(k), std::move(report)};
  }
  if (!saw_end) return false;  // truncated

  // Optional whole-file checksum trailer (written by save() since the
  // atomic-rename change). Files from older writers end at "end" and load
  // fine; when the trailer is present it must match — it is the only check
  // that covers the header and calibration line.
  if (std::getline(in, line)) {
    TokenParser tp(line);
    if (tp.word() == "filesum") {
      const std::string sum_word = tp.word();
      char* sum_end = nullptr;
      const std::uint64_t stored =
          std::strtoull(sum_word.c_str(), &sum_end, 10);
      if (!tp.done() || sum_end == nullptr || *sum_end != '\0' ||
          sum_word.empty() || stored != file_sum.state) {
        return false;
      }
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  map_ = std::move(loaded);
  if (calibration != nullptr && have_cal) *calibration = loaded_cal;
  return true;
}

}  // namespace mtk
