// Named-tensor registry for the serving layer: the long-lived store behind
// mttkrp_serve that keeps hot StoredTensor handles (and their lazily built
// CSF forests) alive across requests, so the compression cost the paper's
// reuse argument amortizes is actually amortized — one build per tensor
// *version*, not per request.
//
// A version is an immutable snapshot:
//
//   base     — the sorted COO coordinates the handle (and therefore the
//              shared CSF accel cache) was built from.
//   handle   — a StoredTensor viewing base. Handle copies share the accel
//              cache, so every sub-threshold version serves kernels from
//              the same forest with zero rebuilds.
//   pending  — sorted delta nonzeros appended since base was built. MTTKRP
//              is linear in the tensor, so the serving layer answers
//              queries exactly as  mttkrp(base) + mttkrp(pending)  without
//              touching the compressed structure.
//
// append() publishes a new version. Below the staleness threshold
// (pending_nnz < threshold * base_nnz) the new version shares base and
// handle — a cheap delta merge. At or above it the deltas are folded into
// a fresh base (sort_and_dedup) and a fresh handle is cut: the actual CSF
// re-compression then happens lazily on the next kernel call and is
// witnessed by the existing `mtk.csf.builds` counter, while the registry's
// own `mtk.serve.rebuilds` counts the fold decisions.
//
// The registry also stores the latest CP model per (name, rank) so
// streaming refinement warm-starts from the previous fit instead of a
// random initialization (`mtk.serve.warm_starts`).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/cp/cp_als.hpp"
#include "src/mttkrp/dispatch.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

struct TensorVersion {
  std::uint64_t version = 0;
  // Owns the coordinates the handle views; shared across sub-threshold
  // versions so the CSF accel cache stays valid and warm.
  std::shared_ptr<const SparseTensor> base;
  StoredTensor handle;   // COO view of *base; copies share the accel cache
  SparseTensor pending;  // sorted deltas not yet folded into base
  // Requested serving backend: kCsf engages the handle's shared forest
  // (sparse_algo kCsf), kCoo keeps the per-nonzero coordinate kernel.
  StorageFormat backend = StorageFormat::kCsf;

  index_t base_nnz() const { return base ? base->nnz() : 0; }
  index_t pending_nnz() const { return pending.nnz(); }
  index_t total_nnz() const { return base_nnz() + pending_nnz(); }
  // pending/base nonzero ratio the rebuild policy thresholds on.
  double staleness() const;
  // Estimated bytes this version keeps resident (coordinates + values of
  // base and pending) — the unit the registry's memory budget accounts in.
  std::size_t resident_bytes() const;
};

// One nonzero delta: coordinate plus additive value (summed into any
// existing entry at the same coordinate when the fold happens).
struct DeltaEntry {
  multi_index_t index;
  double value = 0.0;
};

class TensorRegistry {
 public:
  // `staleness_threshold` is the pending/base nonzero ratio at which
  // append() folds deltas into a fresh base (and thus a fresh CSF build).
  explicit TensorRegistry(double staleness_threshold = 0.25);

  // Registers `x` under `name`, replacing any existing entry (models are
  // dropped with it). The tensor is sorted here if needed.
  std::shared_ptr<const TensorVersion> load(const std::string& name,
                                            SparseTensor x,
                                            StorageFormat backend);

  // Current version, or nullptr when the name is not registered.
  std::shared_ptr<const TensorVersion> get(const std::string& name) const;

  // Appends delta nonzeros (bounds-checked against the tensor dims) and
  // publishes the new version; `rebuilt`, when non-null, reports whether
  // the staleness threshold folded the deltas into a fresh base. Throws if
  // the name is not registered.
  std::shared_ptr<const TensorVersion> append(
      const std::string& name, const std::vector<DeltaEntry>& entries,
      bool* rebuilt = nullptr);

  bool evict(const std::string& name);
  std::vector<std::string> names() const;
  std::size_t size() const;

  // Memory budget: when > 0, load() and append() evict least-recently-used
  // entries (other than the one being touched) until the summed
  // resident_bytes of current versions fits the budget
  // (`mtk.serve.evictions`). Eviction only drops the registry's reference:
  // versions are immutable shared_ptr snapshots, so in-flight readers that
  // already hold one stay valid for as long as they keep it. A single entry
  // larger than the whole budget stays resident — the budget bounds the
  // cold tail, it never starves the tensor being served.
  void set_max_resident_bytes(std::size_t bytes);
  std::size_t max_resident_bytes() const;
  // Summed resident_bytes of all current versions (the
  // `mtk.serve.resident_bytes` gauge).
  std::size_t resident_bytes() const;

  // Warm CP model store, keyed by (name, rank). Models are snapshots: a
  // stored model survives sub-threshold appends and rebuilds (the factors
  // stay shape-compatible because dims are fixed at load).
  std::shared_ptr<const CpModel> model(const std::string& name,
                                       index_t rank) const;
  void store_model(const std::string& name, index_t rank, CpModel model);

  double staleness_threshold() const { return threshold_; }

 private:
  struct Entry {
    std::shared_ptr<const TensorVersion> current;
    std::map<index_t, std::shared_ptr<const CpModel>> models;
    // LRU ordinal: the use_clock_ value of the last touch (get / append /
    // model read). Smallest = coldest = first eviction candidate. Mutable
    // because reads through the const accessors still count as touches.
    mutable std::uint64_t last_used = 0;
  };

  static std::shared_ptr<const TensorVersion> make_version(
      std::uint64_t version, std::shared_ptr<const SparseTensor> base,
      SparseTensor pending, StorageFormat backend);

  std::size_t resident_bytes_locked() const;
  // Evicts cold entries (never `protect`) until the budget fits.
  void enforce_budget_locked(const std::string& protect);

  double threshold_;
  std::size_t max_resident_bytes_ = 0;
  mutable std::uint64_t use_clock_ = 0;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace mtk
