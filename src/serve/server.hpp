// The MTTKRP serving loop behind tools/mttkrp_serve: a worker pool
// answering JSON-lines requests against the TensorRegistry, with the
// process-wide PlanCache supplying warm plans and the planner's predicted
// cost driving admission.
//
// Protocol (one JSON object per line; see docs/serving.md for the full
// schemas):
//
//   {"id":1,"op":"load","tensor":"t","path":"x.tns","backend":"csf"}
//   {"id":2,"op":"mttkrp","tensor":"t","rank":16,"mode":0,"seed":7}
//   {"id":3,"op":"append","tensor":"t","entries":[[0,1,2,0.5]]}
//   {"id":4,"op":"refine","tensor":"t","rank":8,"iters":5}
//   {"id":5,"op":"stats"}
//   {"id":6,"op":"shutdown"}
//
// Responses are JSON lines tagged with the request id; completion order is
// not arrival order (workers run concurrently and batch by key).
//
// Execution policy:
//   * Admission happens on the submitting thread: a full queue or a
//     planner-predicted cost above ServeOptions::admit_max_cost rejects
//     the request immediately (`mtk.serve.rejected`). The cost lookup is
//     PlanCache::global().get_or_plan — a warm hit after the first request
//     per (tensor, rank, mode) key, which is what makes per-request
//     planning affordable (`mtk.plan.cache.hits`).
//   * Workers coalesce queued mttkrp requests with the same
//     (tensor, rank, mode, epsilon) key into one batch (up to
//     batch_window), sharing the version snapshot, the plan, and the
//     worker's thread-local kernel arena.
//   * A request's `epsilon` (default ServeOptions::default_epsilon)
//     routes it to the leverage-sampled backend; 0 runs exact kernels.
//   * `stats` and `shutdown` are barriers: they drain in-flight work
//     before answering, so scripted runs observe a quiescent snapshot.
#pragma once

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/parsim/transport/fault.hpp"
#include "src/planner/calibrate.hpp"
#include "src/serve/tensor_registry.hpp"

namespace mtk {

struct ServeOptions {
  int workers = 2;
  // Max mttkrp requests coalesced into one batch (1 disables batching).
  int batch_window = 8;
  // Admission: queue slots; submissions beyond this are rejected.
  std::size_t max_queue = 256;
  // Pending/base nonzero ratio that folds deltas into a fresh base.
  double staleness_threshold = 0.25;
  // Epsilon applied to requests that do not carry their own; 0 = exact.
  double default_epsilon = 0.0;
  // Admission: reject requests whose planner-predicted score exceeds this
  // (0 disables the cost gate).
  double admit_max_cost = 0.0;
  // Modeled processor count for the predicted-cost lookup. This is a
  // planning knob, not the worker count: the score ranks request cost on
  // the machine the calibration describes.
  int plan_procs = 4;
  // OpenMP threads for the local kernels (> 0 enables the parallel
  // schedules inside each request; workers are still the concurrency unit).
  int local_threads = 0;
  // Measured machine parameters for the cost model (optional).
  Calibration machine;

  // --- Robustness / graceful degradation (docs/serving.md, "Failure
  // modes") ---
  // Per-request wall-clock deadline in milliseconds, measured from
  // submission; 0 disables. A request that has not started (or retried)
  // within its deadline answers a typed "deadline_exceeded" error instead
  // of executing. Requests override it with their own "deadline_ms" field.
  double default_deadline_ms = 0.0;
  // Retry budget for transiently-failed work items (typed TransportError):
  // up to max_retries re-executions with exponential backoff
  // (retry_backoff_ms * 2^attempt, +-50% deterministic jitter), each gated
  // on the remaining deadline budget.
  int max_retries = 2;
  double retry_backoff_ms = 1.0;
  // Overload shedding: when > 0, an exact mttkrp request whose predicted
  // cost exceeds admit_max_cost is degraded to the sampled backend with
  // this epsilon (reported in the answer) instead of rejected.
  double shed_epsilon = 0.0;
  // Registry memory budget forwarded to TensorRegistry (0 = unbounded).
  std::size_t max_resident_bytes = 0;
  // Bound on one request line; longer lines answer a typed error and the
  // serve loop continues.
  std::size_t max_line_bytes = 1 << 20;
  // Chaos injection: when set, every work-item attempt consults the
  // injector (seeded, deterministic) for delays and transient failures —
  // the --chaos mode of tools/mttkrp_serve and the chaos harness.
  std::shared_ptr<const FaultInjector> chaos;
};

class MttkrpServer {
 public:
  explicit MttkrpServer(const ServeOptions& opts);
  ~MttkrpServer();

  MttkrpServer(const MttkrpServer&) = delete;
  MttkrpServer& operator=(const MttkrpServer&) = delete;

  // Parses, admits, and enqueues one request line. Thread-safe. The future
  // resolves to the JSON response line; parse errors and admission
  // rejections resolve immediately.
  std::future<std::string> submit(const std::string& request_line);

  // submit() + wait.
  std::string handle(const std::string& request_line);

  // Drives the stdio protocol: reads request lines from `in` until EOF or
  // a shutdown request, writing each response to `out` (flushed per line)
  // as it completes. Returns 0 after draining outstanding work.
  int run(std::FILE* in, std::FILE* out);

  // Blocks until every submitted request has completed.
  void wait_idle();

  bool shutdown_requested() const;

  TensorRegistry& registry() { return registry_; }
  const ServeOptions& options() const { return opts_; }

  // Defined in server.cpp; public so the parser helpers there can build one.
  struct Request;

 private:
  void worker_loop();
  void execute_batch(std::vector<std::unique_ptr<Request>>& batch);
  // Retry wrapper: runs one data-plane request with the chaos injector,
  // deadline checks, and the exponential-backoff retry budget applied.
  std::string execute_with_retries(
      Request& req, const std::shared_ptr<const TensorVersion>& version,
      int batch_size);
  std::string execute_control(Request& req);
  std::string execute_mttkrp(
      Request& req, const std::shared_ptr<const TensorVersion>& version,
      int batch_size);
  std::string execute_refine(
      Request& req, const std::shared_ptr<const TensorVersion>& version);
  std::string execute_append(Request& req);
  void finish(Request& req, std::string response);

  ServeOptions opts_;
  TensorRegistry registry_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // workers: work available / stop
  std::condition_variable idle_cv_;   // waiters: outstanding_ == 0
  std::deque<std::unique_ptr<Request>> queue_;
  std::size_t outstanding_ = 0;  // queued + executing
  bool stop_ = false;
  bool shutdown_ = false;

  std::mutex sink_mu_;
  std::FILE* sink_ = nullptr;  // run(): responses stream here

  std::vector<std::thread> workers_;
};

}  // namespace mtk
