#include "src/serve/tensor_registry.hpp"

#include "src/obs/metrics.hpp"

namespace mtk {

namespace {

Counter& rebuild_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.serve.rebuilds");
  return c;
}

Counter& delta_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("mtk.serve.deltas.appended");
  return c;
}

Gauge& tensors_gauge() {
  static Gauge& g = MetricsRegistry::global().gauge("mtk.serve.tensors");
  return g;
}

Counter& evictions_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.serve.evictions");
  return c;
}

Gauge& resident_gauge() {
  static Gauge& g =
      MetricsRegistry::global().gauge("mtk.serve.resident_bytes");
  return g;
}

}  // namespace

double TensorVersion::staleness() const {
  const index_t b = base_nnz();
  if (b == 0) return pending_nnz() > 0 ? 1.0 : 0.0;
  return static_cast<double>(pending_nnz()) / static_cast<double>(b);
}

std::size_t TensorVersion::resident_bytes() const {
  const std::size_t order =
      base ? static_cast<std::size_t>(base->order()) : handle.dims().size();
  const std::size_t per_nnz = order * sizeof(index_t) + sizeof(double);
  return static_cast<std::size_t>(total_nnz()) * per_nnz;
}

TensorRegistry::TensorRegistry(double staleness_threshold)
    : threshold_(staleness_threshold) {
  MTK_CHECK(staleness_threshold > 0.0,
            "staleness threshold must be > 0, got ", staleness_threshold);
}

std::shared_ptr<const TensorVersion> TensorRegistry::make_version(
    std::uint64_t version, std::shared_ptr<const SparseTensor> base,
    SparseTensor pending, StorageFormat backend) {
  auto v = std::make_shared<TensorVersion>();
  v->version = version;
  v->base = std::move(base);
  v->handle = StoredTensor::coo_view(*v->base);
  v->pending = std::move(pending);
  v->backend = backend;
  return v;
}

std::shared_ptr<const TensorVersion> TensorRegistry::load(
    const std::string& name, SparseTensor x, StorageFormat backend) {
  MTK_CHECK(!name.empty(), "tensor name must be non-empty");
  MTK_CHECK(backend == StorageFormat::kCoo || backend == StorageFormat::kCsf,
            "serving backend must be coo or csf");
  x.sort_and_dedup();
  MTK_CHECK(x.nnz() > 0, "refusing to register empty tensor '", name, "'");
  auto base = std::make_shared<const SparseTensor>(std::move(x));
  SparseTensor empty_pending(base->dims());
  auto v = make_version(1, std::move(base), std::move(empty_pending), backend);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  e.current = std::move(v);
  e.models.clear();
  e.last_used = ++use_clock_;
  enforce_budget_locked(name);
  tensors_gauge().set(static_cast<double>(entries_.size()));
  resident_gauge().set(static_cast<double>(resident_bytes_locked()));
  return e.current;
}

std::shared_ptr<const TensorVersion> TensorRegistry::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = ++use_clock_;
  return it->second.current;
}

std::shared_ptr<const TensorVersion> TensorRegistry::append(
    const std::string& name, const std::vector<DeltaEntry>& entries,
    bool* rebuilt) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  MTK_CHECK(it != entries_.end(), "append: unknown tensor '", name, "'");
  const TensorVersion& cur = *it->second.current;

  // Merge the new deltas into a copy of the pending store. push_back
  // bounds-checks each coordinate against the (fixed) dims.
  SparseTensor pending = cur.pending;
  for (const DeltaEntry& d : entries) {
    pending.push_back(d.index, d.value);
  }
  pending.sort_and_dedup();
  delta_counter().add(static_cast<std::int64_t>(entries.size()));

  const bool fold =
      static_cast<double>(pending.nnz()) >=
      threshold_ * static_cast<double>(cur.base_nnz());
  std::shared_ptr<const TensorVersion> next;
  if (fold) {
    // Fold base + pending into a fresh sorted base. The fresh handle's CSF
    // forest is compressed lazily on the next kernel call — that build is
    // what `mtk.csf.builds` witnesses; this counter records the decision.
    SparseTensor merged = *cur.base;
    for (index_t p = 0; p < pending.nnz(); ++p) {
      merged.push_back(pending.coordinate(p), pending.value(p));
    }
    merged.sort_and_dedup();
    auto base = std::make_shared<const SparseTensor>(std::move(merged));
    next = make_version(cur.version + 1, std::move(base),
                        SparseTensor(cur.base->dims()), cur.backend);
    rebuild_counter().add(1);
  } else {
    // Sub-threshold: share base and handle (and therefore the warm CSF
    // accel cache) with the previous version.
    auto v = std::make_shared<TensorVersion>();
    v->version = cur.version + 1;
    v->base = cur.base;
    v->handle = cur.handle;
    v->pending = std::move(pending);
    v->backend = cur.backend;
    next = std::move(v);
  }
  if (rebuilt != nullptr) *rebuilt = fold;
  it->second.current = std::move(next);
  it->second.last_used = ++use_clock_;
  std::shared_ptr<const TensorVersion> out = it->second.current;
  enforce_budget_locked(name);
  resident_gauge().set(static_cast<double>(resident_bytes_locked()));
  return out;
}

bool TensorRegistry::evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = entries_.erase(name) > 0;
  tensors_gauge().set(static_cast<double>(entries_.size()));
  resident_gauge().set(static_cast<double>(resident_bytes_locked()));
  return erased;
}

void TensorRegistry::set_max_resident_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_resident_bytes_ = bytes;
  enforce_budget_locked(std::string());
  resident_gauge().set(static_cast<double>(resident_bytes_locked()));
}

std::size_t TensorRegistry::max_resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_resident_bytes_;
}

std::size_t TensorRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_locked();
}

std::size_t TensorRegistry::resident_bytes_locked() const {
  std::size_t total = 0;
  for (const auto& kv : entries_) {
    if (kv.second.current) total += kv.second.current->resident_bytes();
  }
  return total;
}

void TensorRegistry::enforce_budget_locked(const std::string& protect) {
  if (max_resident_bytes_ == 0) return;
  while (resident_bytes_locked() > max_resident_bytes_) {
    // The budget bounds the cold tail; it never evicts the last resident
    // entry (a single tensor larger than the whole budget keeps serving).
    if (entries_.size() <= 1) break;
    // Coldest entry other than the one being touched. In-flight readers
    // holding a version snapshot keep it alive through their shared_ptr;
    // eviction only drops the registry's reference.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == protect) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // only the protected entry left
    entries_.erase(victim);
    evictions_counter().add(1);
  }
  tensors_gauge().set(static_cast<double>(entries_.size()));
}

std::vector<std::string> TensorRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& kv : entries_) out.push_back(kv.first);
  return out;
}

std::size_t TensorRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::shared_ptr<const CpModel> TensorRegistry::model(const std::string& name,
                                                     index_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = ++use_clock_;
  auto mit = it->second.models.find(rank);
  return mit == it->second.models.end() ? nullptr : mit->second;
}

void TensorRegistry::store_model(const std::string& name, index_t rank,
                                 CpModel model) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  MTK_CHECK(it != entries_.end(), "store_model: unknown tensor '", name, "'");
  it->second.models[rank] = std::make_shared<const CpModel>(std::move(model));
}

}  // namespace mtk
