#include "src/serve/server.hpp"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "src/io/tensor_io.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/sketch/sampled_mttkrp.hpp"
#include "src/support/json.hpp"
#include "src/support/rng.hpp"

namespace mtk {

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Serve-layer instruments (documented in docs/metrics.md).

Counter& requests_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.serve.requests");
  return c;
}
Counter& errors_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.serve.errors");
  return c;
}
Counter& rejected_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.serve.rejected");
  return c;
}
Counter& batches_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.serve.batches");
  return c;
}
Counter& batched_requests_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("mtk.serve.batched_requests");
  return c;
}
Counter& warm_starts_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("mtk.serve.warm_starts");
  return c;
}
Counter& retries_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.serve.retries");
  return c;
}
Counter& shed_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.serve.shed");
  return c;
}
Counter& deadline_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("mtk.serve.deadline_exceeded");
  return c;
}
Counter& injected_failures_counter() {
  static Counter& c = MetricsRegistry::global().counter("mtk.fault.failures");
  return c;
}
Histogram& latency_histogram() {
  static Histogram& h =
      MetricsRegistry::global().histogram("mtk.serve.latency_us");
  return h;
}
Histogram& queue_wait_histogram() {
  static Histogram& h =
      MetricsRegistry::global().histogram("mtk.serve.queue_wait_us");
  return h;
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON emission, like every other emitter in this repo (the
// parser in src/support/json is the read side).

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_integer(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

// Builds one response object field-by-field; keys are emitted in call order.
class ResponseBuilder {
 public:
  explicit ResponseBuilder(std::int64_t id, bool ok) {
    line_ = "{\"id\":";
    append_integer(line_, id);
    line_ += ",\"ok\":";
    line_ += ok ? "true" : "false";
  }
  ResponseBuilder& str(const char* key, const std::string& v) {
    key_(key);
    append_json_string(line_, v);
    return *this;
  }
  ResponseBuilder& num(const char* key, double v) {
    key_(key);
    append_number(line_, v);
    return *this;
  }
  ResponseBuilder& integer(const char* key, std::int64_t v) {
    key_(key);
    append_integer(line_, v);
    return *this;
  }
  ResponseBuilder& boolean(const char* key, bool v) {
    key_(key);
    line_ += v ? "true" : "false";
    return *this;
  }
  ResponseBuilder& dims(const char* key, const shape_t& d) {
    key_(key);
    line_.push_back('[');
    for (std::size_t k = 0; k < d.size(); ++k) {
      if (k > 0) line_.push_back(',');
      append_integer(line_, d[k]);
    }
    line_.push_back(']');
    return *this;
  }
  std::string finish() {
    line_.push_back('}');
    return std::move(line_);
  }

 private:
  void key_(const char* key) {
    line_.push_back(',');
    line_.push_back('"');
    line_ += key;
    line_ += "\":";
  }
  std::string line_;
};

std::int64_t micros_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
}

StorageFormat parse_backend(const std::string& s) {
  if (s == "coo") return StorageFormat::kCoo;
  if (s == "csf") return StorageFormat::kCsf;
  throw std::runtime_error("unknown backend '" + s +
                           "' (expected coo|csf)");
}

}  // namespace

// ---------------------------------------------------------------------------
// Request representation.

enum class ServeOp { kLoad, kMttkrp, kAppend, kRefine, kEvict, kStats,
                     kShutdown };

struct MttkrpServer::Request {
  std::int64_t id = 0;
  ServeOp op = ServeOp::kStats;
  std::string tensor;

  // load
  std::string path;
  shape_t gen_dims;
  double density = 0.01;
  double skew = 0.0;
  StorageFormat backend = StorageFormat::kCsf;

  // mttkrp / refine
  index_t rank = 0;
  int mode = 0;
  std::uint64_t seed = 42;
  double epsilon = 0.0;
  index_t sample_count = 0;
  int iters = 10;
  double tol = 1e-6;

  // append
  std::vector<DeltaEntry> entries;

  // Admission-time plan lookup results (data-plane ops only).
  double predicted_cost = 0.0;
  SparseKernelVariant kernel_variant = SparseKernelVariant::kAuto;

  // Robustness state.
  double deadline_ms = 0.0;  // effective deadline (request or server default)
  bool degraded = false;     // overload shedding routed an exact request to
                             // the sampled backend
  int retries_used = 0;

  std::string batch_key;
  Clock::time_point t_submit;
  Clock::time_point t_start;  // execution start (queue wait witness)
  std::promise<std::string> reply;
};

namespace {

ServeOp parse_op(const std::string& s) {
  if (s == "load") return ServeOp::kLoad;
  if (s == "mttkrp") return ServeOp::kMttkrp;
  if (s == "append") return ServeOp::kAppend;
  if (s == "refine") return ServeOp::kRefine;
  if (s == "evict") return ServeOp::kEvict;
  if (s == "stats") return ServeOp::kStats;
  if (s == "shutdown") return ServeOp::kShutdown;
  throw std::runtime_error("unknown op '" + s + "'");
}

void parse_request(MttkrpServer::Request& req, const std::string& line) {
  const JsonValue root = JsonValue::parse(line);
  if (!root.is_object()) throw std::runtime_error("request must be an object");
  if (const JsonValue* id = root.find("id")) req.id = id->as_integer();
  const JsonValue* op = root.find("op");
  if (op == nullptr) throw std::runtime_error("request missing \"op\"");
  req.op = parse_op(op->as_string());

  if (const JsonValue* t = root.find("tensor")) req.tensor = t->as_string();
  if (const JsonValue* p = root.find("path")) req.path = p->as_string();
  if (const JsonValue* b = root.find("backend")) {
    req.backend = parse_backend(b->as_string());
  }
  if (const JsonValue* d = root.find("dims")) {
    for (const JsonValue& v : d->items()) {
      req.gen_dims.push_back(static_cast<index_t>(v.as_integer()));
    }
  }
  if (const JsonValue* v = root.find("density")) req.density = v->as_number();
  if (const JsonValue* v = root.find("skew")) req.skew = v->as_number();
  if (const JsonValue* v = root.find("rank")) {
    req.rank = static_cast<index_t>(v->as_integer());
  }
  if (const JsonValue* v = root.find("mode")) {
    req.mode = static_cast<int>(v->as_integer());
  }
  if (const JsonValue* v = root.find("seed")) {
    req.seed = static_cast<std::uint64_t>(v->as_integer());
  }
  if (const JsonValue* v = root.find("epsilon")) req.epsilon = v->as_number();
  if (const JsonValue* v = root.find("sample_count")) {
    req.sample_count = static_cast<index_t>(v->as_integer());
  }
  if (const JsonValue* v = root.find("iters")) {
    req.iters = static_cast<int>(v->as_integer());
  }
  if (const JsonValue* v = root.find("tol")) req.tol = v->as_number();
  if (const JsonValue* v = root.find("deadline_ms")) {
    req.deadline_ms = v->as_number();
  }
  if (const JsonValue* e = root.find("entries")) {
    for (const JsonValue& row : e->items()) {
      const auto& cells = row.items();
      if (cells.size() < 2) {
        throw std::runtime_error(
            "append entry needs [i_0, ..., i_{N-1}, value]");
      }
      DeltaEntry d;
      for (std::size_t k = 0; k + 1 < cells.size(); ++k) {
        d.index.push_back(static_cast<index_t>(cells[k].as_integer()));
      }
      d.value = cells.back().as_number();
      req.entries.push_back(std::move(d));
    }
  }

  switch (req.op) {
    case ServeOp::kLoad:
      if (req.tensor.empty()) throw std::runtime_error("load needs \"tensor\"");
      if (req.path.empty() && req.gen_dims.empty()) {
        throw std::runtime_error("load needs \"path\" or \"dims\"");
      }
      break;
    case ServeOp::kMttkrp:
    case ServeOp::kRefine:
      if (req.tensor.empty()) throw std::runtime_error("op needs \"tensor\"");
      if (req.rank < 1) throw std::runtime_error("op needs \"rank\" >= 1");
      break;
    case ServeOp::kAppend:
      if (req.tensor.empty()) throw std::runtime_error("op needs \"tensor\"");
      if (req.entries.empty()) {
        throw std::runtime_error("append needs non-empty \"entries\"");
      }
      break;
    case ServeOp::kEvict:
      if (req.tensor.empty()) throw std::runtime_error("evict needs \"tensor\"");
      break;
    case ServeOp::kStats:
    case ServeOp::kShutdown:
      break;
  }
}

// Every error answer is typed: `kind` is one of bad_request | rejected |
// deadline_exceeded | timeout | corruption | aborted | internal, so clients
// (and the chaos harness) can branch without parsing prose.
std::string error_response(std::int64_t id, const std::string& message,
                           const char* kind, bool rejected = false) {
  errors_counter().add(1);
  ResponseBuilder r(id, false);
  r.str("error", message);
  r.str("kind", kind);
  if (rejected) r.boolean("rejected", true);
  return r.finish();
}

// Maps an execution exception to its error kind: typed transport faults
// keep their taxonomy, validation errors are the client's fault, anything
// else is internal.
const char* classify_error(const std::exception& e) {
  if (const auto* te = dynamic_cast<const TransportError*>(&e)) {
    return to_string(te->fault_kind());
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return "bad_request";
  }
  return "internal";
}

std::int64_t counter_value(const char* name) {
  return MetricsRegistry::global().counter(name).value();
}

}  // namespace

// ---------------------------------------------------------------------------
// Server lifecycle.

MttkrpServer::MttkrpServer(const ServeOptions& opts)
    : opts_(opts), registry_(opts.staleness_threshold) {
  MTK_CHECK(opts_.workers >= 1, "need at least one worker, got ",
            opts_.workers);
  MTK_CHECK(opts_.batch_window >= 1, "batch window must be >= 1");
  MTK_CHECK(opts_.max_queue >= 1, "max queue must be >= 1");
  MTK_CHECK(opts_.max_retries >= 0, "max retries must be >= 0");
  MTK_CHECK(opts_.retry_backoff_ms >= 0.0, "retry backoff must be >= 0");
  MTK_CHECK(opts_.shed_epsilon >= 0.0 && opts_.shed_epsilon < 1.0,
            "shed epsilon must be in [0, 1)");
  MTK_CHECK(opts_.max_line_bytes >= 64, "max line bytes must be >= 64");
  if (opts_.max_resident_bytes > 0) {
    registry_.set_max_resident_bytes(opts_.max_resident_bytes);
  }
  // Register the injection instrument up front so a chaos run's metrics
  // snapshot carries the family even when no fault happens to fire.
  if (opts_.chaos) injected_failures_counter();
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MttkrpServer::~MttkrpServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool MttkrpServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

void MttkrpServer::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void MttkrpServer::finish(Request& req, std::string response) {
  latency_histogram().observe(micros_between(req.t_submit, Clock::now()));
  requests_counter().add(1);
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    if (sink_ != nullptr) {
      std::fputs(response.c_str(), sink_);
      std::fputc('\n', sink_);
      std::fflush(sink_);
    }
  }
  req.reply.set_value(std::move(response));
}

// ---------------------------------------------------------------------------
// Submission: parse, control-plane ops inline, data-plane ops admitted and
// queued.

std::future<std::string> MttkrpServer::submit(const std::string& line) {
  auto req = std::make_unique<Request>();
  req->t_submit = Clock::now();
  std::future<std::string> fut = req->reply.get_future();

  try {
    parse_request(*req, line);
  } catch (const std::exception& e) {
    finish(*req, error_response(req->id, e.what(), "bad_request"));
    return fut;
  }
  if (req->deadline_ms <= 0.0) req->deadline_ms = opts_.default_deadline_ms;

  switch (req->op) {
    case ServeOp::kLoad:
    case ServeOp::kEvict:
    case ServeOp::kStats:
    case ServeOp::kShutdown: {
      // Control plane: executed inline on the submitting thread. stats and
      // shutdown drain first so they observe a quiescent server.
      std::string response;
      try {
        response = execute_control(*req);
      } catch (const std::exception& e) {
        response = error_response(req->id, e.what(), classify_error(e));
      }
      finish(*req, std::move(response));
      return fut;
    }
    default:
      break;
  }

  // Data plane. Admission gate 1: queue depth.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= opts_.max_queue) {
      rejected_counter().add(1);
      finish(*req, error_response(req->id, "admission: queue full", "rejected",
                                  /*rejected=*/true));
      return fut;
    }
  }

  // Tensor resolution + admission gate 2: the planner's predicted cost,
  // fetched through the process-wide plan cache (warm after the first
  // request per key — the `mtk.plan.cache.hits` witness).
  if (req->op == ServeOp::kMttkrp || req->op == ServeOp::kRefine) {
    auto version = registry_.get(req->tensor);
    if (version == nullptr) {
      finish(*req, error_response(
                       req->id, "unknown tensor '" + req->tensor + "'",
                       "bad_request"));
      return fut;
    }
    if (req->epsilon == 0.0) req->epsilon = opts_.default_epsilon;
    try {
      Span span(SpanCategory::kPlanner, "serve.admit");
      PlannerOptions popts;
      popts.procs = opts_.plan_procs;
      popts.mode = req->mode;
      popts.workload = req->op == ServeOp::kRefine ? PlanWorkload::kCpAls
                                                   : PlanWorkload::kSingleMttkrp;
      popts.machine = opts_.machine;
      popts.epsilon = req->epsilon;
      popts.sample_count = req->sample_count;
      popts.reuse_count =
          req->op == ServeOp::kRefine
              ? std::max(1, req->iters) * version->handle.order()
              : 1;
      auto report =
          PlanCache::global().get_or_plan(version->handle, req->rank, popts);
      req->predicted_cost = report->best().score;
      req->kernel_variant = report->best().kernel_variant;
    } catch (const std::exception&) {
      // Infeasible grid at this plan_procs (tiny tensor): no cost estimate;
      // admit and run with the kernels' own heuristics.
      req->predicted_cost = 0.0;
      req->kernel_variant = SparseKernelVariant::kAuto;
    }
    if (opts_.admit_max_cost > 0.0 &&
        req->predicted_cost > opts_.admit_max_cost) {
      if (opts_.shed_epsilon > 0.0 && req->op == ServeOp::kMttkrp &&
          req->epsilon == 0.0) {
        // Overload shedding: degrade the over-budget exact request to the
        // sampled backend instead of rejecting it. The answer reports the
        // degradation (path=sampled, degraded=true, the epsilon applied).
        req->epsilon = opts_.shed_epsilon;
        req->degraded = true;
        shed_counter().add(1);
      } else {
        rejected_counter().add(1);
        std::string msg = "admission: predicted cost ";
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", req->predicted_cost);
        msg += buf;
        msg += " exceeds limit";
        finish(*req,
               error_response(req->id, msg, "rejected", /*rejected=*/true));
        return fut;
      }
    }
  }

  if (req->op == ServeOp::kMttkrp) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\x1f%lld\x1f%d\x1f%.9g",
                  static_cast<long long>(req->rank), req->mode, req->epsilon);
    req->batch_key = req->tensor + buf;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(req));
    ++outstanding_;
  }
  queue_cv_.notify_one();
  return fut;
}

std::string MttkrpServer::handle(const std::string& request_line) {
  return submit(request_line).get();
}

// ---------------------------------------------------------------------------
// Control-plane execution (submit thread).

std::string MttkrpServer::execute_control(Request& req) {
  switch (req.op) {
    case ServeOp::kLoad: {
      SparseTensor x;
      if (!req.path.empty()) {
        x = load_tensor_tns(req.path);
      } else {
        Rng rng(req.seed);
        x = req.skew > 0.0
                ? SparseTensor::random_sparse_skewed(req.gen_dims, req.density,
                                                     req.skew, rng)
                : SparseTensor::random_sparse(req.gen_dims, req.density, rng);
      }
      auto v = registry_.load(req.tensor, std::move(x), req.backend);
      return ResponseBuilder(req.id, true)
          .str("op", "load")
          .str("tensor", req.tensor)
          .integer("nnz", v->total_nnz())
          .dims("dims", v->handle.dims())
          .str("backend", to_string(v->backend))
          .integer("latency_us", micros_between(req.t_submit, Clock::now()))
          .finish();
    }
    case ServeOp::kEvict: {
      const bool evicted = registry_.evict(req.tensor);
      return ResponseBuilder(req.id, true)
          .str("op", "evict")
          .str("tensor", req.tensor)
          .boolean("evicted", evicted)
          .finish();
    }
    case ServeOp::kStats: {
      wait_idle();
      Histogram& lat = latency_histogram();
      return ResponseBuilder(req.id, true)
          .str("op", "stats")
          .integer("requests", counter_value("mtk.serve.requests"))
          .integer("errors", counter_value("mtk.serve.errors"))
          .integer("rejected", counter_value("mtk.serve.rejected"))
          .integer("batches", counter_value("mtk.serve.batches"))
          .integer("batched_requests",
                   counter_value("mtk.serve.batched_requests"))
          .integer("rebuilds", counter_value("mtk.serve.rebuilds"))
          .integer("deltas_appended",
                   counter_value("mtk.serve.deltas.appended"))
          .integer("warm_starts", counter_value("mtk.serve.warm_starts"))
          .integer("retries", counter_value("mtk.serve.retries"))
          .integer("shed", counter_value("mtk.serve.shed"))
          .integer("deadline_exceeded",
                   counter_value("mtk.serve.deadline_exceeded"))
          .integer("evictions", counter_value("mtk.serve.evictions"))
          .integer("resident_bytes",
                   static_cast<std::int64_t>(registry_.resident_bytes()))
          .integer("csf_builds", counter_value("mtk.csf.builds"))
          .integer("plan_hits",
                   static_cast<std::int64_t>(PlanCache::global().hits()))
          .integer("plan_misses",
                   static_cast<std::int64_t>(PlanCache::global().misses()))
          .integer("tensors", static_cast<std::int64_t>(registry_.size()))
          .integer("latency_p50_us", lat.approx_quantile_upper(0.50))
          .integer("latency_p95_us", lat.approx_quantile_upper(0.95))
          .integer("latency_p99_us", lat.approx_quantile_upper(0.99))
          .finish();
    }
    case ServeOp::kShutdown: {
      wait_idle();
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
      }
      return ResponseBuilder(req.id, true).str("op", "shutdown").finish();
    }
    default:
      break;
  }
  throw std::logic_error("execute_control: not a control op");
}

// ---------------------------------------------------------------------------
// Worker pool: batch coalescing + data-plane execution.

void MttkrpServer::worker_loop() {
  for (;;) {
    std::vector<std::unique_ptr<Request>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Coalesce same-key mttkrp requests: they share the version snapshot,
      // the (already warm) plan, and this worker's kernel arena.
      if (batch.front()->op == ServeOp::kMttkrp && opts_.batch_window > 1) {
        for (auto it = queue_.begin();
             it != queue_.end() &&
             static_cast<int>(batch.size()) < opts_.batch_window;) {
          if ((*it)->op == ServeOp::kMttkrp &&
              (*it)->batch_key == batch.front()->batch_key) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    execute_batch(batch);
  }
}

void MttkrpServer::execute_batch(
    std::vector<std::unique_ptr<Request>>& batch) {
  if (batch.size() > 1) {
    batches_counter().add(1);
    batched_requests_counter().add(static_cast<std::int64_t>(batch.size()));
  }
  // One snapshot for the whole batch (all members share the batch key, and
  // appends/evictions published after this point are intentionally not
  // visible to an already-dequeued batch).
  std::shared_ptr<const TensorVersion> version;
  if (!batch.front()->tensor.empty()) {
    version = registry_.get(batch.front()->tensor);
  }
  for (auto& member : batch) {
    Request& req = *member;
    req.t_start = Clock::now();
    queue_wait_histogram().observe(micros_between(req.t_submit, req.t_start));
    Span span(SpanCategory::kPhase, "serve.request");
    if (span.enabled()) {
      span.arg("id", req.id);
      span.arg("op", static_cast<std::int64_t>(req.op));
      span.arg("batch", static_cast<std::int64_t>(batch.size()));
    }
    std::string response =
        execute_with_retries(req, version, static_cast<int>(batch.size()));
    finish(req, std::move(response));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_ -= batch.size();
    if (outstanding_ == 0) idle_cv_.notify_all();
  }
}

std::string MttkrpServer::execute_with_retries(
    Request& req, const std::shared_ptr<const TensorVersion>& version,
    int batch_size) {
  const auto remaining_ms = [&]() -> double {
    if (req.deadline_ms <= 0.0) return 1e18;  // no deadline
    return req.deadline_ms -
           static_cast<double>(micros_between(req.t_submit, Clock::now())) /
               1000.0;
  };
  const auto deadline_error = [&](const std::string& cause) {
    deadline_counter().add(1);
    return error_response(
        req.id, "deadline of " + std::to_string(req.deadline_ms) +
                    "ms exceeded" + (cause.empty() ? "" : ": " + cause),
        "deadline_exceeded");
  };

  for (int attempt = 0;; ++attempt) {
    if (remaining_ms() <= 0.0) {
      return deadline_error(attempt == 0 ? "before execution"
                                         : "while retrying");
    }
    try {
      // Chaos injection: seeded, deterministic per (request id, attempt).
      if (opts_.chaos) {
        const FaultInjector::AttemptFault fault =
            opts_.chaos->on_attempt(static_cast<std::uint64_t>(req.id),
                                    attempt);
        if (fault.delay_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(fault.delay_us));
        }
        if (fault.fail) {
          injected_failures_counter().add(1);
          throw TransportError(fault.kind, -1,
                               std::string("injected transient fault (") +
                                   to_string(fault.kind) + ") on attempt " +
                                   std::to_string(attempt));
        }
      }
      switch (req.op) {
        case ServeOp::kMttkrp:
          return execute_mttkrp(req, version, batch_size);
        case ServeOp::kRefine:
          return execute_refine(req, version);
        case ServeOp::kAppend:
          return execute_append(req);
        default:
          throw std::logic_error("execute_batch: not a data-plane op");
      }
    } catch (const TransportError& e) {
      // Transient by taxonomy: retry with exponential backoff and
      // deterministic +-50% jitter, as long as budget and deadline allow.
      if (attempt >= opts_.max_retries) {
        return error_response(req.id, e.what(), to_string(e.fault_kind()));
      }
      const double jitter =
          0.5 + static_cast<double>(
                    derive_seed(static_cast<std::uint64_t>(req.id),
                                static_cast<std::uint64_t>(attempt) + 101) >>
                    11) *
                    0x1.0p-53;
      const double backoff_ms =
          opts_.retry_backoff_ms * static_cast<double>(1 << attempt) * jitter;
      if (backoff_ms >= remaining_ms()) return deadline_error(e.what());
      retries_counter().add(1);
      ++req.retries_used;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff_ms));
    } catch (const std::exception& e) {
      // Non-transient: validation and logic errors do not retry.
      return error_response(req.id, e.what(), classify_error(e));
    }
  }
}

std::string MttkrpServer::execute_mttkrp(
    Request& req, const std::shared_ptr<const TensorVersion>& version,
    int batch_size) {
  if (version == nullptr) {
    throw std::runtime_error("unknown tensor '" + req.tensor + "'");
  }
  const StoredTensor& x = version->handle;
  MTK_CHECK(req.mode >= 0 && req.mode < x.order(), "mode ", req.mode,
            " out of range for order-", x.order(), " tensor");
  Rng rng(req.seed);
  std::vector<Matrix> factors;
  factors.reserve(static_cast<std::size_t>(x.order()));
  for (int k = 0; k < x.order(); ++k) {
    factors.push_back(Matrix::random_normal(x.dim(k), req.rank, rng));
  }

  MttkrpOptions kopts;
  kopts.sparse_algo = version->backend == StorageFormat::kCsf
                          ? SparseMttkrpAlgo::kCsf
                          : SparseMttkrpAlgo::kCoo;
  kopts.kernel_variant = req.kernel_variant;
  kopts.parallel = opts_.local_threads > 0;

  Matrix m;
  const char* path = "exact";
  index_t samples = 0;
  if (req.epsilon > 0.0) {
    path = "sampled";
    samples = req.sample_count > 0
                  ? req.sample_count
                  : sample_count_for_epsilon(req.rank, req.epsilon);
    KrpSample sample = sample_krp_leverage(factors, req.mode, samples, rng);
    if (version->backend == StorageFormat::kCsf) {
      m = mttkrp_sampled(x.csf_forest().tree_for(req.mode), factors, sample,
                         kopts);
    } else {
      m = mttkrp_sampled(*version->base, factors, sample, kopts);
    }
  } else {
    m = mttkrp(x, factors, req.mode, kopts);
  }

  // MTTKRP is linear in the tensor: serve the un-folded deltas exactly with
  // the per-nonzero COO kernel and add — zero CSF rebuilds below the
  // staleness threshold.
  if (version->pending_nnz() > 0) {
    MttkrpOptions dopts;
    dopts.sparse_algo = SparseMttkrpAlgo::kCoo;
    Matrix d = mttkrp(version->pending, factors, req.mode, dopts);
    for (index_t i = 0; i < m.rows(); ++i) {
      double* mi = m.row(i);
      const double* di = d.row(i);
      for (index_t j = 0; j < m.cols(); ++j) mi[j] += di[j];
    }
  }

  ResponseBuilder r(req.id, true);
  r.str("op", "mttkrp")
      .str("tensor", req.tensor)
      .integer("mode", req.mode)
      .integer("rank", req.rank)
      .num("norm", m.frobenius_norm())
      .str("path", path)
      .integer("batch", batch_size)
      .integer("version", static_cast<std::int64_t>(version->version))
      .integer("pending_nnz", version->pending_nnz())
      .num("predicted_cost", req.predicted_cost)
      .integer("latency_us", micros_between(req.t_submit, Clock::now()));
  if (samples > 0) r.integer("samples", samples);
  if (req.degraded) {
    // Overload shedding is graceful degradation, not silent degradation:
    // the answer says which epsilon the sampled fallback ran with.
    r.boolean("degraded", true).num("shed_epsilon", req.epsilon);
  }
  if (req.retries_used > 0) r.integer("retries", req.retries_used);
  return r.finish();
}

std::string MttkrpServer::execute_refine(
    Request& req, const std::shared_ptr<const TensorVersion>& version) {
  if (version == nullptr) {
    throw std::runtime_error("unknown tensor '" + req.tensor + "'");
  }
  CpAlsOptions copts;
  copts.rank = req.rank;
  copts.max_iterations = std::max(1, req.iters);
  copts.tolerance = req.tol;
  copts.seed = req.seed;
  copts.mttkrp.sparse_algo = version->backend == StorageFormat::kCsf
                                 ? SparseMttkrpAlgo::kCsf
                                 : SparseMttkrpAlgo::kCoo;
  copts.mttkrp.kernel_variant = req.kernel_variant;
  copts.mttkrp.parallel = opts_.local_threads > 0;
  if (req.epsilon > 0.0) {
    copts.sketch.epsilon = req.epsilon;
    copts.sketch.sample_count = req.sample_count;
  }
  // Warm start from the stored model for this (tensor, rank): streaming
  // refinement continues the previous fit instead of re-randomizing.
  // Refinement runs against the folded base; sub-threshold deltas reach
  // the model when the staleness policy folds them (docs/serving.md).
  auto warm = registry_.model(req.tensor, req.rank);
  if (warm != nullptr) {
    copts.initial = warm.get();
    warm_starts_counter().add(1);
  }
  const CpAlsResult result = cp_als(version->handle, copts);
  registry_.store_model(req.tensor, req.rank, result.model);
  return ResponseBuilder(req.id, true)
      .str("op", "refine")
      .str("tensor", req.tensor)
      .integer("rank", req.rank)
      .num("fit", result.final_fit)
      .integer("iterations", result.iterations)
      .boolean("converged", result.converged)
      .boolean("warm", warm != nullptr)
      .integer("version", static_cast<std::int64_t>(version->version))
      .num("predicted_cost", req.predicted_cost)
      .integer("latency_us", micros_between(req.t_submit, Clock::now()))
      .finish();
}

std::string MttkrpServer::execute_append(Request& req) {
  bool rebuilt = false;
  auto version = registry_.append(req.tensor, req.entries, &rebuilt);
  return ResponseBuilder(req.id, true)
      .str("op", "append")
      .str("tensor", req.tensor)
      .integer("appended", static_cast<std::int64_t>(req.entries.size()))
      .integer("pending_nnz", version->pending_nnz())
      .integer("total_nnz", version->total_nnz())
      .boolean("rebuilt", rebuilt)
      .num("staleness", version->staleness())
      .integer("version", static_cast<std::int64_t>(version->version))
      .integer("latency_us", micros_between(req.t_submit, Clock::now()))
      .finish();
}

// ---------------------------------------------------------------------------
// Stdio driver.

namespace {

// Bounded line reader: a hostile (or corrupted) input stream cannot grow
// `line` past `max_bytes`. On overflow the rest of the physical line is
// consumed and discarded so the serve loop resynchronizes at the next
// newline instead of aborting.
bool read_line(std::FILE* in, std::string& line, std::size_t max_bytes,
               bool* overflowed) {
  line.clear();
  *overflowed = false;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') return true;
    if (line.size() >= max_bytes) {
      *overflowed = true;
      while ((c = std::fgetc(in)) != EOF && c != '\n') {
      }
      return true;
    }
    line.push_back(static_cast<char>(c));
  }
  return !line.empty();
}

bool blank_or_comment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

int MttkrpServer::run(std::FILE* in, std::FILE* out) {
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    sink_ = out;
  }
  std::string line;
  bool overflowed = false;
  while (read_line(in, line, opts_.max_line_bytes, &overflowed)) {
    if (overflowed) {
      // The line had no parseable id; answer id 0 so the client still sees
      // a typed error instead of silence, and keep the loop running.
      const std::string response = error_response(
          0, "request line exceeds " + std::to_string(opts_.max_line_bytes) +
                 " bytes",
          "bad_request");
      std::lock_guard<std::mutex> lock(sink_mu_);
      if (sink_ != nullptr) {
        std::fputs(response.c_str(), sink_);
        std::fputc('\n', sink_);
        std::fflush(sink_);
      }
      continue;
    }
    if (blank_or_comment(line)) continue;
    // The future is deliberately dropped: responses stream to the sink.
    submit(line);
    if (shutdown_requested()) break;
  }
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    sink_ = nullptr;
  }
  return 0;
}

}  // namespace mtk
