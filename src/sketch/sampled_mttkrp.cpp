#include "src/sketch/sampled_mttkrp.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/mttkrp/dispatch.hpp"
#include "src/mttkrp/thread_arena.hpp"
#include "src/support/check.hpp"
#include "src/support/math_util.hpp"

namespace mtk {

namespace {

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

index_t check_sampled_args(const shape_t& dims,
                           const std::vector<Matrix>& factors,
                           const KrpSample& sample) {
  const int n = static_cast<int>(dims.size());
  MTK_CHECK(static_cast<int>(factors.size()) == n,
            "mttkrp_sampled: need one factor per mode");
  MTK_CHECK(sample.skip_mode >= 0 && sample.skip_mode < n,
            "mttkrp_sampled: sample mode ", sample.skip_mode,
            " out of range for order-", n, " tensor");
  MTK_CHECK(sample.dims == dims,
            "mttkrp_sampled: sample was drawn for different dims");
  MTK_CHECK(sample.count() >= 1, "mttkrp_sampled: empty sample");
  const index_t rank = factors.front().cols();
  for (int k = 0; k < n; ++k) {
    const Matrix& a = factors[static_cast<std::size_t>(k)];
    MTK_CHECK(a.rows() == dims[static_cast<std::size_t>(k)] &&
                  a.cols() == rank,
              "mttkrp_sampled: factor ", k, " must be ",
              dims[static_cast<std::size_t>(k)], " x ", rank, ", got ",
              a.rows(), " x ", a.cols());
    if (k == sample.skip_mode) continue;
    MTK_CHECK(static_cast<index_t>(
                  sample.indices[static_cast<std::size_t>(k)].size()) ==
                  sample.count(),
              "mttkrp_sampled: sample is missing mode-", k, " draws");
  }
  return rank;
}

// The drawn complement tuples, linearized under a caller-chosen mode
// visitation order, merged by key (duplicate draws sum their weights):
//   weight  — final-key -> accumulated importance weight
//   prefix  — for the CSF walk, the partial keys after each non-final
//             complement level, so undrawn subtrees prune early
//   bitmap  — flat fast-reject over the final key space when it is small
//             enough (a bit test is ~10x cheaper than a hash probe, and
//             almost every nonzero of a well-sampled tensor is rejected
//             here, never reaching the map)
struct ComplementFilter {
  std::unordered_map<index_t, double> weight;
  std::vector<std::unordered_set<index_t>> prefix;
  // prefix_bitmap[l] replaces prefix[l] (then emptied) when level l's key
  // space fits the cap; the CSF walk probes once per node at every
  // non-final level, so this bit test — not the leaf probe — is the hot
  // path that decides whether sampling beats the exact kernel.
  std::vector<std::vector<std::uint64_t>> prefix_bitmap;
  std::vector<std::uint64_t> bitmap;

  static bool bit_set(const std::vector<std::uint64_t>& bits, index_t key) {
    return ((bits[static_cast<std::size_t>(key >> 6)] >>
             (static_cast<std::uint64_t>(key) & 63)) &
            1u) != 0;
  }

  bool maybe(index_t key) const {
    return bitmap.empty() || bit_set(bitmap, key);
  }

  bool maybe_prefix(int level, index_t key) const {
    const auto& bits = prefix_bitmap[static_cast<std::size_t>(level)];
    if (!bits.empty()) return bit_set(bits, key);
    return prefix[static_cast<std::size_t>(level)].count(key) != 0;
  }
};

constexpr index_t kBitmapBitCap = index_t{1} << 27;  // 16 MiB of bits

// Builds the filter with complement modes visited in `mode_at(l)` order for
// l = 0..levels-1 (skipping the output mode is the caller's job: mode_at
// must enumerate only complement modes). `track_prefixes` fills
// prefix[l] for every non-final level l.
template <typename ModeAt>
ComplementFilter build_filter(const KrpSample& sample, int levels,
                              const ModeAt& mode_at, bool track_prefixes) {
  ComplementFilter f;
  if (track_prefixes) {
    f.prefix.resize(static_cast<std::size_t>(levels));
  }
  const index_t s_count = sample.count();
  f.weight.reserve(static_cast<std::size_t>(s_count) * 2);
  for (index_t s = 0; s < s_count; ++s) {
    index_t key = 0;
    for (int l = 0; l < levels; ++l) {
      const int m = mode_at(l);
      key = key * sample.dims[static_cast<std::size_t>(m)] +
            sample.indices[static_cast<std::size_t>(m)]
                          [static_cast<std::size_t>(s)];
      if (track_prefixes && l + 1 < levels) {
        f.prefix[static_cast<std::size_t>(l)].insert(key);
      }
    }
    f.weight[key] += sample.weights[static_cast<std::size_t>(s)];
  }

  // Key space per level = product of complement extents so far;
  // overflow-guarded, bitmaps only where the space fits the cap. The final
  // level's bitmap guards the weight map; each non-final level's bitmap
  // supersedes its prefix hash set (which is then released).
  if (track_prefixes) {
    f.prefix_bitmap.resize(static_cast<std::size_t>(levels));
  }
  index_t space = 1;
  bool overflow = false;
  for (int l = 0; l < levels; ++l) {
    const index_t d = sample.dims[static_cast<std::size_t>(mode_at(l))];
    if (!overflow && space > kBitmapBitCap / std::max<index_t>(d, 1) + 1) {
      overflow = true;
    }
    if (overflow) continue;
    space = space * d;
    if (space > kBitmapBitCap) {
      overflow = true;
      continue;
    }
    const std::size_t words = static_cast<std::size_t>((space + 63) / 64);
    if (l + 1 == levels) {
      f.bitmap.assign(words, 0);
      for (const auto& [key, w] : f.weight) {
        f.bitmap[static_cast<std::size_t>(key >> 6)] |=
            std::uint64_t{1} << (static_cast<std::uint64_t>(key) & 63);
      }
    } else if (track_prefixes) {
      auto& bits = f.prefix_bitmap[static_cast<std::size_t>(l)];
      bits.assign(words, 0);
      for (const index_t key : f.prefix[static_cast<std::size_t>(l)]) {
        bits[static_cast<std::size_t>(key >> 6)] |=
            std::uint64_t{1} << (static_cast<std::uint64_t>(key) & 63);
      }
      f.prefix[static_cast<std::size_t>(l)].clear();
    }
  }
  return f;
}

void fill_stats(SampledMttkrpStats* stats, const ComplementFilter& f,
                index_t survivors) {
  if (stats == nullptr) return;
  stats->distinct_tuples = static_cast<index_t>(f.weight.size());
  stats->surviving_nonzeros = survivors;
}

// ---------------------------------------------------------------------------
// COO hash-filter kernel.

// Accumulates nonzeros [begin, end) of x into `out` (dim(mode) x rank),
// using `prod` as an R-wide scratch. Returns the survivor count.
index_t coo_accumulate_sampled(const SparseTensor& x,
                               const std::vector<Matrix>& factors, int mode,
                               const ComplementFilter& f, index_t begin,
                               index_t end, double* out, index_t rank,
                               double* prod) {
  const int n = x.order();
  index_t survivors = 0;
  for (index_t q = begin; q < end; ++q) {
    index_t key = 0;
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      key = key * x.dim(k) + x.index(k, q);
    }
    if (!f.maybe(key)) continue;
    const auto it = f.weight.find(key);
    if (it == f.weight.end()) continue;
    ++survivors;
    const double wv = it->second * x.values()[static_cast<std::size_t>(q)];
    for (index_t r = 0; r < rank; ++r) prod[r] = wv;
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      const double* row =
          factors[static_cast<std::size_t>(k)].row(x.index(k, q));
      for (index_t r = 0; r < rank; ++r) prod[r] *= row[r];
    }
    double* dst = out + x.index(mode, q) * rank;
    for (index_t r = 0; r < rank; ++r) dst[r] += prod[r];
  }
  return survivors;
}

// ---------------------------------------------------------------------------
// CSF filtered walk.

struct CsfSampledCtx {
  const CsfTensor* x = nullptr;
  const std::vector<Matrix>* factors = nullptr;
  const ComplementFilter* filter = nullptr;
  int out_level = 0;
  int final_level = 0;  // tree level at which the complement key completes
  index_t rank = 0;
  double* stack = nullptr;  // order x rank running products
  double* out = nullptr;    // rows x rank (direct or privatized)
  index_t survivors = 0;
};

// Walks the subtree at (level, node). `key` is the complement key over the
// complement levels consumed so far; `prod` the matching factor-row product
// (importance weight folded in at final_level); `out_row` the output row
// once the output level has been passed.
void csf_sampled_walk(CsfSampledCtx& c, int level, index_t node, index_t key,
                      index_t out_row, const double* prod) {
  const CsfTensor& x = *c.x;
  const int m = x.mode_order()[static_cast<std::size_t>(level)];
  const index_t i = x.fids(level)[static_cast<std::size_t>(node)];
  const int order = x.order();
  const index_t rank = c.rank;

  if (level == order - 1) {  // leaf: values live here
    const double v = x.values()[static_cast<std::size_t>(node)];
    if (level == c.out_level) {
      // Complement key completed (and weight folded into prod) one level
      // up; scatter into the leaf-mode output row.
      double* dst = c.out + i * rank;
      for (index_t r = 0; r < rank; ++r) dst[r] += v * prod[r];
      ++c.survivors;
      return;
    }
    const index_t full_key = key * x.dim(m) + i;
    if (!c.filter->maybe(full_key)) return;
    const auto it = c.filter->weight.find(full_key);
    if (it == c.filter->weight.end()) return;
    ++c.survivors;
    const double* row = (*c.factors)[static_cast<std::size_t>(m)].row(i);
    const double wv = it->second * v;
    double* dst = c.out + out_row * rank;
    for (index_t r = 0; r < rank; ++r) dst[r] += wv * prod[r] * row[r];
    return;
  }

  index_t next_key = key;
  const double* next_prod = prod;
  if (level == c.out_level) {
    out_row = i;  // pass through: the output level contributes no key bits
  } else {
    next_key = key * x.dim(m) + i;
    double weight = 1.0;
    if (level == c.final_level) {
      // Interior completing level (the output mode sits at the leaf):
      // resolve the weight here and fold it into the running product.
      if (!c.filter->maybe(next_key)) return;
      const auto it = c.filter->weight.find(next_key);
      if (it == c.filter->weight.end()) return;
      weight = it->second;
    } else {
      // Filter levels enumerate only complement modes, so a tree level past
      // the output level maps one slot down.
      const int fl = level - (level > c.out_level ? 1 : 0);
      if (!c.filter->maybe_prefix(fl, next_key)) {
        return;  // no drawn tuple starts with this prefix: prune the subtree
      }
    }
    const double* row = (*c.factors)[static_cast<std::size_t>(m)].row(i);
    double* slot = c.stack + static_cast<index_t>(level) * rank;
    for (index_t r = 0; r < rank; ++r) slot[r] = weight * prod[r] * row[r];
    next_prod = slot;
  }

  const std::vector<index_t>& ptr = x.fptr(level);
  for (index_t ch = ptr[static_cast<std::size_t>(node)];
       ch < ptr[static_cast<std::size_t>(node) + 1]; ++ch) {
    csf_sampled_walk(c, level + 1, ch, next_key, out_row, next_prod);
  }
}

}  // namespace

Matrix mttkrp_sampled(const SparseTensor& x,
                      const std::vector<Matrix>& factors,
                      const KrpSample& sample, const MttkrpOptions& opts,
                      SampledMttkrpStats* stats) {
  const index_t rank = check_sampled_args(x.dims(), factors, sample);
  MTK_CHECK(x.sorted(), "mttkrp_sampled requires sort_and_dedup() first");
  const int n = x.order();
  const int mode = sample.skip_mode;

  // Ascending-mode visitation, skipping the output mode.
  std::vector<int> comp_modes;
  comp_modes.reserve(static_cast<std::size_t>(n - 1));
  for (int k = 0; k < n; ++k) {
    if (k != mode) comp_modes.push_back(k);
  }
  const ComplementFilter filter = build_filter(
      sample, n - 1,
      [&](int l) { return comp_modes[static_cast<std::size_t>(l)]; },
      /*track_prefixes=*/false);

  Matrix b(x.dim(mode), rank, 0.0);
  const index_t count = x.nnz();
  ThreadArena& arena = mttkrp_arena();
  const int threads = opts.parallel ? max_threads() : 1;
  index_t survivors = 0;

  if (threads <= 1) {
    arena.prepare(1, static_cast<std::size_t>(rank));
    survivors = coo_accumulate_sampled(x, factors, mode, filter, 0, count,
                                       b.data(), rank, arena.slot(0));
  } else {
    // Privatized outputs merged under a critical section — the survivor set
    // is sparse and scattered, so owner-computes tiling buys nothing here.
    const index_t out_words = checked_mul(b.rows(), rank);
    arena.prepare(threads, static_cast<std::size_t>(out_words + rank));
#pragma omp parallel reduction(+ : survivors)
    {
#ifdef _OPENMP
      const index_t nth = omp_get_num_threads();
      const index_t tid = omp_get_thread_num();
#else
      const index_t nth = 1, tid = 0;
#endif
      const index_t chunk = ceil_div(std::max<index_t>(count, 1), nth);
      const index_t begin = std::min(count, tid * chunk);
      const index_t end = std::min(count, begin + chunk);
      if (begin < end) {
        double* scratch = arena.slot(static_cast<int>(tid));
        double* prod = scratch + out_words;
        std::fill(scratch, scratch + out_words, 0.0);
        survivors += coo_accumulate_sampled(x, factors, mode, filter, begin,
                                            end, scratch, rank, prod);
#pragma omp critical(mtk_mttkrp_sampled_coo_reduce)
        {
          double* dst = b.data();
          for (index_t w = 0; w < out_words; ++w) dst[w] += scratch[w];
        }
      }
    }
  }
  fill_stats(stats, filter, survivors);
  return b;
}

Matrix mttkrp_sampled(const CsfTensor& x, const std::vector<Matrix>& factors,
                      const KrpSample& sample, const MttkrpOptions& opts,
                      SampledMttkrpStats* stats) {
  const index_t rank = check_sampled_args(x.dims(), factors, sample);
  const int n = x.order();
  const int mode = sample.skip_mode;
  const int out_level = x.level_of_mode(mode);
  const int final_level = out_level == n - 1 ? n - 2 : n - 1;

  // Tree-order visitation of the complement levels.
  std::vector<int> comp_modes;
  comp_modes.reserve(static_cast<std::size_t>(n - 1));
  for (int l = 0; l < n; ++l) {
    if (l != out_level) {
      comp_modes.push_back(x.mode_order()[static_cast<std::size_t>(l)]);
    }
  }
  const ComplementFilter filter = build_filter(
      sample, n - 1,
      [&](int l) { return comp_modes[static_cast<std::size_t>(l)]; },
      /*track_prefixes=*/true);

  Matrix b(x.dim(mode), rank, 0.0);
  const index_t roots = x.node_count(0);
  ThreadArena& arena = mttkrp_arena();
  const int threads = opts.parallel ? max_threads() : 1;
  const std::size_t stack_words =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(rank) +
      static_cast<std::size_t>(rank);
  const bool owner_computes = out_level == 0;
  const index_t out_words = checked_mul(b.rows(), rank);
  const std::size_t slot_words =
      stack_words + (owner_computes || threads <= 1
                         ? 0
                         : static_cast<std::size_t>(out_words));
  arena.prepare(std::max(threads, 1), slot_words);

  const auto make_ctx = [&](double* slot, double* out) {
    CsfSampledCtx c;
    c.x = &x;
    c.factors = &factors;
    c.filter = &filter;
    c.out_level = out_level;
    c.final_level = final_level;
    c.rank = rank;
    c.stack = slot;
    c.out = out;
    return c;
  };
  const auto ones_of = [&](double* slot) -> const double* {
    double* ones = slot + static_cast<std::size_t>(n) * rank;
    std::fill(ones, ones + rank, 1.0);
    return ones;
  };

  index_t survivors = 0;
  if (threads <= 1) {
    double* slot = arena.slot(0);
    CsfSampledCtx c = make_ctx(slot, b.data());
    const double* ones = ones_of(slot);
    for (index_t f = 0; f < roots; ++f) {
      csf_sampled_walk(c, 0, f, 0, 0, ones);
    }
    survivors = c.survivors;
  } else if (owner_computes) {
    // Root level is the output mode: root subtrees write disjoint rows.
#pragma omp parallel reduction(+ : survivors)
    {
#ifdef _OPENMP
      const int tid = omp_get_thread_num();
#else
      const int tid = 0;
#endif
      double* slot = arena.slot(tid);
      CsfSampledCtx c = make_ctx(slot, b.data());
      const double* ones = ones_of(slot);
#pragma omp for schedule(dynamic, 16)
      for (index_t f = 0; f < roots; ++f) {
        csf_sampled_walk(c, 0, f, 0, 0, ones);
      }
      survivors += c.survivors;
    }
  } else {
#pragma omp parallel reduction(+ : survivors)
    {
#ifdef _OPENMP
      const int tid = omp_get_thread_num();
#else
      const int tid = 0;
#endif
      double* slot = arena.slot(tid);
      double* priv = slot + stack_words;
      std::fill(priv, priv + out_words, 0.0);
      CsfSampledCtx c = make_ctx(slot, priv);
      const double* ones = ones_of(slot);
#pragma omp for schedule(dynamic, 16)
      for (index_t f = 0; f < roots; ++f) {
        csf_sampled_walk(c, 0, f, 0, 0, ones);
      }
      survivors += c.survivors;
#pragma omp critical(mtk_mttkrp_sampled_csf_reduce)
      {
        double* dst = b.data();
        for (index_t w = 0; w < out_words; ++w) dst[w] += priv[w];
      }
    }
  }
  fill_stats(stats, filter, survivors);
  return b;
}

Matrix mttkrp_sampled_dense(const DenseTensor& x,
                            const std::vector<Matrix>& factors,
                            const KrpSample& sample,
                            SampledMttkrpStats* stats) {
  const index_t rank = check_sampled_args(x.dims(), factors, sample);
  const int n = x.order();
  const int mode = sample.skip_mode;
  const shape_t strides = col_major_strides(x.dims());
  const index_t out_rows = x.dim(mode);
  const index_t out_stride = strides[static_cast<std::size_t>(mode)];

  Matrix b(out_rows, rank, 0.0);
  std::vector<double> krow(static_cast<std::size_t>(rank));
  index_t touched = 0;
  for (index_t s = 0; s < sample.count(); ++s) {
    index_t base = 0;
    const double w = sample.weights[static_cast<std::size_t>(s)];
    for (index_t r = 0; r < rank; ++r) krow[static_cast<std::size_t>(r)] = w;
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      const index_t i = sample.indices[static_cast<std::size_t>(k)]
                                      [static_cast<std::size_t>(s)];
      base += i * strides[static_cast<std::size_t>(k)];
      const double* row = factors[static_cast<std::size_t>(k)].row(i);
      for (index_t r = 0; r < rank; ++r) {
        krow[static_cast<std::size_t>(r)] *= row[r];
      }
    }
    for (index_t i = 0; i < out_rows; ++i) {
      const double v = x[base + i * out_stride];
      if (v == 0.0) continue;
      ++touched;
      double* dst = b.row(i);
      for (index_t r = 0; r < rank; ++r) {
        dst[r] += v * krow[static_cast<std::size_t>(r)];
      }
    }
  }
  if (stats != nullptr) {
    stats->distinct_tuples = sample.count();
    stats->surviving_nonzeros = touched;
  }
  return b;
}

Matrix mttkrp_sampled(const CsfSet& forest, const std::vector<Matrix>& factors,
                      const KrpSample& sample, const MttkrpOptions& opts,
                      SampledMttkrpStats* stats) {
  MTK_CHECK(!forest.empty(), "mttkrp_sampled: empty CSF set");
  // The exact walk wants the output mode at the root (owner-computes
  // writes); the sampled walk wants the opposite. With a complement mode at
  // the root, undrawn root fibers are pruned wholesale by the prefix
  // filter, and at most min(S, extent) root subtrees survive — so route to
  // the tree rooted at the largest-extent complement mode when the forest
  // holds one, and fall back to the output tree otherwise.
  const CsfTensor* pick = &forest.tree_for(sample.skip_mode);
  index_t pick_extent = -1;
  for (int t = 0; t < forest.tree_count(); ++t) {
    const CsfTensor& tree = forest.tree(t);
    const int root = tree.mode_order().front();
    if (root == sample.skip_mode) continue;
    if (tree.dim(root) > pick_extent) {
      pick = &tree;
      pick_extent = tree.dim(root);
    }
  }
  return mttkrp_sampled(*pick, factors, sample, opts, stats);
}

Matrix mttkrp_sampled(const StoredTensor& x,
                      const std::vector<Matrix>& factors,
                      const KrpSample& sample, const MttkrpOptions& opts,
                      SampledMttkrpStats* stats) {
  MTK_CHECK(!x.empty(), "mttkrp_sampled: empty tensor handle");
  switch (x.format()) {
    case StorageFormat::kDense:
      return mttkrp_sampled_dense(x.as_dense(), factors, sample, stats);
    case StorageFormat::kCoo:
      if (opts.sparse_algo == SparseMttkrpAlgo::kCsf) {
        return mttkrp_sampled(x.csf_forest(), factors, sample, opts, stats);
      }
      return mttkrp_sampled(x.as_coo(), factors, sample, opts, stats);
    case StorageFormat::kCsf:
      return mttkrp_sampled(x.csf_forest(), factors, sample, opts, stats);
  }
  MTK_ASSERT(false, "unreachable: unknown storage format");
  return Matrix();
}

}  // namespace mtk
