#include "src/sketch/krp_sample.hpp"

#include <cmath>

#include "src/sketch/leverage.hpp"
#include "src/support/check.hpp"

namespace mtk {

index_t SketchOptions::resolve_sample_count(index_t rank) const {
  if (sample_count > 0) return sample_count;
  MTK_CHECK(epsilon > 0.0,
            "SketchOptions: need sample_count > 0 or epsilon > 0");
  return sample_count_for_epsilon(rank, epsilon);
}

index_t sample_count_for_epsilon(index_t rank, double epsilon) {
  MTK_CHECK(rank >= 1, "rank must be >= 1, got ", rank);
  MTK_CHECK(epsilon > 0.0, "epsilon must be > 0, got ", epsilon);
  const double r = static_cast<double>(rank);
  const double s = std::ceil(r * std::log2(r + 2.0) / (epsilon * epsilon));
  return std::max<index_t>(16, static_cast<index_t>(s));
}

double predicted_sampling_error(index_t rank, index_t sample_count) {
  MTK_CHECK(rank >= 1 && sample_count >= 1,
            "predicted_sampling_error: rank and sample_count must be >= 1");
  const double r = static_cast<double>(rank);
  const double s = static_cast<double>(sample_count);
  return std::min(1.0, std::sqrt(r * std::log2(r + 2.0) / s));
}

KrpSample sample_krp_leverage(const std::vector<Matrix>& factors,
                              const std::vector<Matrix>& grams, int skip_mode,
                              index_t sample_count, Rng& rng) {
  const int n = static_cast<int>(factors.size());
  MTK_CHECK(n >= 2, "sample_krp_leverage needs >= 2 factors");
  MTK_CHECK(skip_mode >= 0 && skip_mode < n, "skip_mode ", skip_mode,
            " out of range for ", n, " factors");
  MTK_CHECK(static_cast<int>(grams.size()) == n,
            "need one Gram per factor, got ", grams.size());
  MTK_CHECK(sample_count >= 1, "sample_count must be >= 1");

  KrpSample sample;
  sample.skip_mode = skip_mode;
  sample.dims.reserve(static_cast<std::size_t>(n));
  for (const Matrix& a : factors) sample.dims.push_back(a.rows());
  sample.indices.assign(static_cast<std::size_t>(n), {});
  sample.weights.assign(static_cast<std::size_t>(sample_count),
                        1.0 / static_cast<double>(sample_count));

  for (int k = 0; k < n; ++k) {
    if (k == skip_mode) continue;
    const Matrix& a = factors[static_cast<std::size_t>(k)];
    std::vector<double> scores =
        leverage_scores_from_gram(a, grams[static_cast<std::size_t>(k)]);
    double total = 0.0;
    for (double v : scores) total += v;
    if (total <= 0.0) {
      // Degenerate factor (all zero): fall back to the uniform distribution
      // so the sampler stays well-defined.
      scores.assign(scores.size(), 1.0);
    }
    const DiscreteSampler sampler(scores);

    std::vector<index_t>& drawn =
        sample.indices[static_cast<std::size_t>(k)];
    drawn.resize(static_cast<std::size_t>(sample_count));
    for (index_t s = 0; s < sample_count; ++s) {
      const index_t i = sampler.sample(rng);
      drawn[static_cast<std::size_t>(s)] = i;
      // The joint probability is the product of the per-mode masses; fold
      // each mode's contribution into the weight as we go: w_s = 1/(S p_s).
      sample.weights[static_cast<std::size_t>(s)] /= sampler.probability(i);
    }
  }
  return sample;
}

KrpSample sample_krp_leverage(const std::vector<Matrix>& factors,
                              int skip_mode, index_t sample_count, Rng& rng) {
  std::vector<Matrix> grams;
  grams.reserve(factors.size());
  for (const Matrix& a : factors) grams.push_back(gram(a));
  return sample_krp_leverage(factors, grams, skip_mode, sample_count, rng);
}

}  // namespace mtk
