#include "src/sketch/krp_sample.hpp"

#include <cmath>
#include <optional>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sketch/leverage.hpp"
#include "src/support/check.hpp"

namespace mtk {

index_t SketchOptions::resolve_sample_count(index_t rank) const {
  if (sample_count > 0) return sample_count;
  MTK_CHECK(epsilon > 0.0,
            "SketchOptions: need sample_count > 0 or epsilon > 0");
  return sample_count_for_epsilon(rank, epsilon);
}

index_t sample_count_for_epsilon(index_t rank, double epsilon) {
  MTK_CHECK(rank >= 1, "rank must be >= 1, got ", rank);
  MTK_CHECK(epsilon > 0.0, "epsilon must be > 0, got ", epsilon);
  const double r = static_cast<double>(rank);
  const double s = std::ceil(r * std::log2(r + 2.0) / (epsilon * epsilon));
  return std::max<index_t>(16, static_cast<index_t>(s));
}

double predicted_sampling_error(index_t rank, index_t sample_count) {
  MTK_CHECK(rank >= 1 && sample_count >= 1,
            "predicted_sampling_error: rank and sample_count must be >= 1");
  const double r = static_cast<double>(rank);
  const double s = static_cast<double>(sample_count);
  return std::min(1.0, std::sqrt(r * std::log2(r + 2.0) / s));
}

namespace {

DiscreteSampler build_leverage_sampler(const Matrix& a, const Matrix& g) {
  std::vector<double> scores = leverage_scores_from_gram(a, g);
  double total = 0.0;
  for (double v : scores) total += v;
  if (total <= 0.0) {
    // Degenerate factor (all zero): fall back to the uniform distribution
    // so the sampler stays well-defined.
    scores.assign(scores.size(), 1.0);
  }
  return DiscreteSampler(scores);
}

void check_sample_args(int n, int skip_mode, std::size_t num_grams,
                       index_t sample_count) {
  MTK_CHECK(n >= 2, "sample_krp_leverage needs >= 2 factors");
  MTK_CHECK(skip_mode >= 0 && skip_mode < n, "skip_mode ", skip_mode,
            " out of range for ", n, " factors");
  MTK_CHECK(static_cast<int>(num_grams) == n,
            "need one Gram per factor, got ", num_grams);
  MTK_CHECK(sample_count >= 1, "sample_count must be >= 1");
}

// The shared draw loop: one sampler per non-skip mode (provided by
// `sampler_for`, fresh or cached), S draws each, joint probability folded
// into the weights as we go: w_s = 1/(S p_s).
template <typename SamplerFor>
KrpSample draw_krp_sample(const std::vector<Matrix>& factors, int skip_mode,
                          index_t sample_count, Rng& rng,
                          SamplerFor&& sampler_for) {
  const int n = static_cast<int>(factors.size());
  KrpSample sample;
  sample.skip_mode = skip_mode;
  sample.dims.reserve(static_cast<std::size_t>(n));
  for (const Matrix& a : factors) sample.dims.push_back(a.rows());
  sample.indices.assign(static_cast<std::size_t>(n), {});
  sample.weights.assign(static_cast<std::size_t>(sample_count),
                        1.0 / static_cast<double>(sample_count));

  for (int k = 0; k < n; ++k) {
    if (k == skip_mode) continue;
    const DiscreteSampler& sampler = sampler_for(k);
    std::vector<index_t>& drawn =
        sample.indices[static_cast<std::size_t>(k)];
    drawn.resize(static_cast<std::size_t>(sample_count));
    for (index_t s = 0; s < sample_count; ++s) {
      const index_t i = sampler.sample(rng);
      drawn[static_cast<std::size_t>(s)] = i;
      sample.weights[static_cast<std::size_t>(s)] /= sampler.probability(i);
    }
  }
  return sample;
}

}  // namespace

KrpSample sample_krp_leverage(const std::vector<Matrix>& factors,
                              const std::vector<Matrix>& grams, int skip_mode,
                              index_t sample_count, Rng& rng) {
  const int n = static_cast<int>(factors.size());
  check_sample_args(n, skip_mode, grams.size(), sample_count);
  std::optional<DiscreteSampler> current;
  return draw_krp_sample(
      factors, skip_mode, sample_count, rng,
      [&](int k) -> const DiscreteSampler& {
        current = build_leverage_sampler(factors[static_cast<std::size_t>(k)],
                                         grams[static_cast<std::size_t>(k)]);
        return *current;
      });
}

KrpSample sample_krp_leverage(const std::vector<Matrix>& factors,
                              int skip_mode, index_t sample_count, Rng& rng) {
  std::vector<Matrix> grams;
  grams.reserve(factors.size());
  for (const Matrix& a : factors) grams.push_back(gram(a));
  return sample_krp_leverage(factors, grams, skip_mode, sample_count, rng);
}

KrpLeverageCache::KrpLeverageCache(int num_modes) {
  MTK_CHECK(num_modes >= 2, "KrpLeverageCache needs >= 2 modes, got ",
            num_modes);
  samplers_.resize(static_cast<std::size_t>(num_modes));
  dirty_.assign(static_cast<std::size_t>(num_modes), 1);
}

void KrpLeverageCache::invalidate(int mode) {
  MTK_CHECK(mode >= 0 && mode < static_cast<int>(dirty_.size()), "mode ",
            mode, " out of range for ", dirty_.size(), " cached modes");
  dirty_[static_cast<std::size_t>(mode)] = 1;
}

KrpSample KrpLeverageCache::sample(const std::vector<Matrix>& factors,
                                   const std::vector<Matrix>& grams,
                                   int skip_mode, index_t sample_count,
                                   Rng& rng) {
  const int n = static_cast<int>(factors.size());
  check_sample_args(n, skip_mode, grams.size(), sample_count);
  MTK_CHECK(n == static_cast<int>(samplers_.size()),
            "KrpLeverageCache built for ", samplers_.size(),
            " modes, called with ", n, " factors");
  return draw_krp_sample(
      factors, skip_mode, sample_count, rng,
      [&](int k) -> const DiscreteSampler& {
        const std::size_t ks = static_cast<std::size_t>(k);
        if (dirty_[ks] || !samplers_[ks].has_value()) {
          Span span(SpanCategory::kSweep, "leverage redraw");
          if (span.enabled()) span.arg("mode", k);
          samplers_[ks] =
              build_leverage_sampler(factors[ks], grams[ks]);
          dirty_[ks] = 0;
          ++rebuilds_;
          static Counter& rebuild_count = MetricsRegistry::global().counter(
              "mtk.sketch.leverage_rebuilds");
          rebuild_count.add();
        }
        return *samplers_[ks];
      });
}

}  // namespace mtk
