// Sketched normal equations for the CP-ALS least-squares updates.
//
// The exact mode-n update solves A^(n) V = M with V the Hadamard product of
// the other Grams and M the exact MTTKRP. The sketched update replaces both
// sides with their sampled estimates over the same S drawn KRP rows:
//
//   V_S = sum_s w_s k_s k_s^T          (R x R, k_s = KRP row s)
//   M_S = sampled MTTKRP               (I_n x R)
//
// i.e. the normal equations of the row-sampled least-squares problem
// min || diag(sqrt w) (S K A^T - S X^T) ||_F — with S = O(R log R / eps^2)
// leverage samples the solve is (1 + eps)-optimal in residual norm with
// high probability (the guarantee the planner's epsilon knob budgets).
//
// For the dense backend there is also a Khatri-Rao random-projection
// variant (Saibaba-Verma-Ballard style): the sketch matrix is a KRP of
// per-mode Gaussian vectors, so Omega^T K collapses to per-mode
// vector-matrix products and never materializes K either.
#pragma once

#include <vector>

#include "src/sketch/krp_sample.hpp"
#include "src/sketch/sampled_mttkrp.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

class StoredTensor;  // src/mttkrp/dispatch.hpp

struct SketchedNormalEq {
  Matrix gram;  // R x R sketched left-hand side (V_S or P^T P)
  Matrix rhs;   // I_n x R sketched right-hand side (M_S or Q^T P)
};

// V_S = sum_s w_s k_s k_s^T, assembled from factor rows on the fly.
Matrix sketched_krp_gram(const std::vector<Matrix>& factors,
                         const KrpSample& sample);

// Leverage-sampled normal equations: gram = sketched_krp_gram, rhs = the
// sampled MTTKRP of `x` for mode sample.skip_mode.
SketchedNormalEq sketched_normal_eq(const StoredTensor& x,
                                    const std::vector<Matrix>& factors,
                                    const KrpSample& sample,
                                    const MttkrpOptions& opts = {},
                                    SampledMttkrpStats* stats = nullptr);

// Gaussian KRP projection for dense storage: draws `sketch_count` KRP-
// structured Gaussian test vectors, forms P = Omega^T K (S x R) from
// per-mode products and Q = Omega^T X_(n)^T (S x I_n) in one pass over the
// tensor, and returns gram = P^T P, rhs = Q^T P (both scaled so they
// estimate the exact V and M).
SketchedNormalEq sketched_normal_eq_gaussian(
    const DenseTensor& x, const std::vector<Matrix>& factors, int mode,
    index_t sketch_count, Rng& rng);

// The factor update: solve_spd_right(eq.gram, eq.rhs) with the library's
// jittered Cholesky (rank-deficient sketches stay solvable).
Matrix solve_sketched(const SketchedNormalEq& eq);

}  // namespace mtk
