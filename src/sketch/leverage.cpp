#include "src/sketch/leverage.hpp"

#include <cmath>

#include "src/support/check.hpp"
#include "src/tensor/eigen_sym.hpp"

namespace mtk {

std::vector<double> leverage_scores_from_gram(const Matrix& a,
                                              const Matrix& gram,
                                              double rank_tolerance) {
  const index_t rows = a.rows();
  const index_t r = a.cols();
  MTK_CHECK(gram.rows() == r && gram.cols() == r,
            "leverage_scores: Gram must be ", r, " x ", r, ", got ",
            gram.rows(), " x ", gram.cols());
  MTK_CHECK(rank_tolerance >= 0.0, "rank_tolerance must be >= 0");

  // G = V diag(lambda) V^T with lambda descending. l_i is the squared norm
  // of row i of A V diag(lambda^{-1/2}) over the numerically nonzero
  // eigenvalues.
  const SymmetricEigen eig = eigen_symmetric(gram);
  const double lambda_max = eig.values.empty() ? 0.0 : eig.values.front();
  const double cutoff = lambda_max * rank_tolerance;

  std::vector<double> inv_lambda(static_cast<std::size_t>(r), 0.0);
  for (index_t j = 0; j < r; ++j) {
    const double lam = eig.values[static_cast<std::size_t>(j)];
    if (lam > cutoff && lam > 0.0) {
      inv_lambda[static_cast<std::size_t>(j)] = 1.0 / lam;
    }
  }

  Matrix w(rows, r, 0.0);
  gemm(a, eig.vectors, w);  // w = A V, row i holds a_i in the eigenbasis

  std::vector<double> scores(static_cast<std::size_t>(rows), 0.0);
  for (index_t i = 0; i < rows; ++i) {
    const double* wi = w.row(i);
    double acc = 0.0;
    for (index_t j = 0; j < r; ++j) {
      acc += wi[j] * wi[j] * inv_lambda[static_cast<std::size_t>(j)];
    }
    // Exact scores lie in [0, 1]; clamp the tiny eigen-solver overshoot so
    // downstream samplers never see a negative weight.
    scores[static_cast<std::size_t>(i)] = std::max(0.0, acc);
  }
  return scores;
}

std::vector<double> leverage_scores(const Matrix& a, double rank_tolerance) {
  return leverage_scores_from_gram(a, gram(a), rank_tolerance);
}

}  // namespace mtk
