// Sampled MTTKRP: evaluate only the S Khatri-Rao rows drawn by
// src/sketch/krp_sample.hpp instead of all prod_{k != n} I_k of them.
//
//   M_hat(i, :) = sum_{s} w_s * X(i, j_s) * K(j_s, :)
//
// is an unbiased estimator of the exact mode-n MTTKRP, and for sparse X the
// kernels below never enumerate the samples against the full index space —
// they walk the stored nonzeros and keep only those whose mode-n-complement
// coordinate tuple was drawn:
//
//   COO  — hash-filter fallback: the sample's complement tuples are
//          linearized into a weight table (plus a flat bitmap fast-reject
//          when the complement space is small enough); one pass over the
//          nonzeros, survivors do the usual R-wide fused multiply.
//   CSF  — filtered tree walk: the sample's tuples become per-level prefix
//          key sets in the tree's own mode order, so entire subtrees whose
//          prefix was never drawn are pruned high up; the surviving paths
//          reuse the exact kernel's memoized partial products. Scratch
//          (product stacks, privatized outputs) lives in the shared
//          ThreadArena like every other sparse kernel.
//   dense— direct evaluation, O(S * I_n * R) instead of O(I_n * F * R).
//
// Weighted duplicate draws are merged at filter-build time, so a nonzero is
// visited once regardless of sample multiplicity.
#pragma once

#include <vector>

#include "src/mttkrp/mttkrp.hpp"
#include "src/sketch/krp_sample.hpp"
#include "src/tensor/csf.hpp"
#include "src/tensor/csf_set.hpp"
#include "src/tensor/dense_tensor.hpp"
#include "src/tensor/matrix.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace mtk {

class StoredTensor;  // src/mttkrp/dispatch.hpp

// Work counters for benches and tests: how much of the tensor the sampled
// kernel actually touched.
struct SampledMttkrpStats {
  index_t distinct_tuples = 0;     // sample tuples after duplicate merging
  index_t surviving_nonzeros = 0;  // nonzeros whose complement was drawn
};

// The output mode is sample.skip_mode; factor shapes must match
// sample.dims. `opts.parallel` enables the OpenMP schedules.
Matrix mttkrp_sampled(const SparseTensor& x,
                      const std::vector<Matrix>& factors,
                      const KrpSample& sample, const MttkrpOptions& opts = {},
                      SampledMttkrpStats* stats = nullptr);
Matrix mttkrp_sampled(const CsfTensor& x, const std::vector<Matrix>& factors,
                      const KrpSample& sample, const MttkrpOptions& opts = {},
                      SampledMttkrpStats* stats = nullptr);
Matrix mttkrp_sampled_dense(const DenseTensor& x,
                            const std::vector<Matrix>& factors,
                            const KrpSample& sample,
                            SampledMttkrpStats* stats = nullptr);

// Multi-tree form: routes to the forest's tree for the output mode, the
// same tree the exact CP-ALS sweep uses (zero extra compressions).
Matrix mttkrp_sampled(const CsfSet& forest, const std::vector<Matrix>& factors,
                      const KrpSample& sample, const MttkrpOptions& opts = {},
                      SampledMttkrpStats* stats = nullptr);

// Storage dispatch, mirroring mttkrp(StoredTensor, ...): dense runs the
// direct kernel, COO the hash filter (or the cached CSF forest under
// SparseMttkrpAlgo::kCsf), CSF the filtered walk.
Matrix mttkrp_sampled(const StoredTensor& x,
                      const std::vector<Matrix>& factors,
                      const KrpSample& sample, const MttkrpOptions& opts = {},
                      SampledMttkrpStats* stats = nullptr);

}  // namespace mtk
