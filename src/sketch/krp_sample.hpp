// Exact leverage-score sampling of Khatri-Rao product rows without forming
// the product (Bharadwaj et al. 2023, CP-ARLS-LEV lineage).
//
// A row of the mode-n KRP K = A^(N-1) ⊙ ... ⊙ A^(n+1) ⊙ A^(n-1) ⊙ ... ⊙
// A^(0) is indexed by one coordinate per non-output mode. The *product*
// distribution that draws mode-k coordinate i with probability
// l^(k)_i / sum(l^(k)) independently per mode upper-bounds the true KRP
// leverage distribution within a rank^{N-2} factor and is exactly samplable
// in O(log I_k) per draw — each drawn KRP row s then carries the
// importance weight w_s = 1 / (S * p_s) that makes the sampled MTTKRP and
// the sampled normal equations unbiased estimators of their exact
// counterparts.
//
// The accuracy knob: S = O(R log R / eps^2) samples give the classic
// (1 + eps) residual-norm guarantee for the sketched least-squares solve;
// sample_count_for_epsilon / predicted_sampling_error expose the two
// directions of that trade so the planner can budget eps against flops.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/support/index.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/matrix.hpp"

namespace mtk {

// Knobs of the randomized (kSampled) execution path, carried by
// CpAlsOptions / CpGradOptions and built by the CLI from
// --sample-count/--epsilon/--seed. Disabled (exact execution) unless a
// sample count or an epsilon budget is set.
struct SketchOptions {
  // Number S of KRP rows to draw; 0 derives S from epsilon and the rank.
  index_t sample_count = 0;
  // Target relative accuracy of the sketched least-squares solves; used to
  // derive S when sample_count == 0. 0 with sample_count == 0 disables
  // sketching.
  double epsilon = 0.0;
  // Sweeps (CP-ALS) or accepted iterations (CP-gradient) between sample
  // redraws; 1 redraws every sweep. The redraw salt folds the sweep and
  // mode indices into the seed, so runs are bit-reproducible regardless of
  // cadence.
  int refresh_every = 1;
  // Root seed of every sampling stream (see derive_seed in
  // src/support/rng.hpp).
  std::uint64_t seed = 0x5eed5a17u;

  bool enabled() const { return sample_count > 0 || epsilon > 0.0; }
  // S actually used for a rank-R problem: sample_count when set, otherwise
  // sample_count_for_epsilon(rank, epsilon).
  index_t resolve_sample_count(index_t rank) const;
};

// S = ceil(rank * log2(rank + 2) / eps^2), clamped to >= 16: the standard
// leverage-sampling count for a (1 + eps)-accurate sketched LS solve.
index_t sample_count_for_epsilon(index_t rank, double epsilon);

// Inverse of the above: the eps the model predicts for S samples,
// min(1, sqrt(rank * log2(rank + 2) / S)).
double predicted_sampling_error(index_t rank, index_t sample_count);

// S drawn KRP rows for the mode-`skip_mode` least-squares problem.
// indices[k] holds the S mode-k coordinates (empty for k == skip_mode);
// weights[s] is the importance weight 1 / (S * p_s). Duplicate draws are
// kept as-is — the sampled kernels merge them by summing weights.
struct KrpSample {
  int skip_mode = 0;
  shape_t dims;  // full tensor dims (dims[skip_mode] is the output extent)
  std::vector<std::vector<index_t>> indices;
  std::vector<double> weights;

  index_t count() const { return static_cast<index_t>(weights.size()); }
};

// Draws `sample_count` KRP rows from the per-mode leverage product
// distribution. `grams[k]` must be the Gram of factors[k] (CP-ALS already
// holds them); the overload without Grams computes them. Modes whose
// leverage mass vanishes (all-zero factor) fall back to uniform draws.
KrpSample sample_krp_leverage(const std::vector<Matrix>& factors,
                              const std::vector<Matrix>& grams, int skip_mode,
                              index_t sample_count, Rng& rng);
KrpSample sample_krp_leverage(const std::vector<Matrix>& factors,
                              int skip_mode, index_t sample_count, Rng& rng);

// Memoized per-mode leverage CDFs for a driver that redraws samples many
// times over slowly-changing factors (sampled CP-ALS). A redraw sweep draws
// against n skip-modes, so the plain entry point above rebuilds every
// factor's CDF (an eigendecomposition plus an I_k scan) n-1 times per sweep
// even though the factor only changed once. The cache rebuilds mode k's
// sampler only when invalidate(k) has been called since its last build —
// the draw stream is bit-identical to sample_krp_leverage because the CDF
// is a pure function of (factor, Gram) and the Rng is caller-supplied.
class KrpLeverageCache {
 public:
  explicit KrpLeverageCache(int num_modes);

  // Call after factor `mode` (and its Gram) changes.
  void invalidate(int mode);
  // CDF rebuilds performed so far — the regression hook for amortization:
  // a cached run's count stays strictly below draws x (n-1) once n >= 3.
  index_t rebuilds() const { return rebuilds_; }

  // Drop-in replacement for sample_krp_leverage(factors, grams, ...).
  KrpSample sample(const std::vector<Matrix>& factors,
                   const std::vector<Matrix>& grams, int skip_mode,
                   index_t sample_count, Rng& rng);

 private:
  std::vector<std::optional<DiscreteSampler>> samplers_;
  std::vector<char> dirty_;  // vector<bool> avoided for addressability
  index_t rebuilds_ = 0;
};

}  // namespace mtk
