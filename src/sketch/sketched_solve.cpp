#include "src/sketch/sketched_solve.hpp"

#include <cmath>
#include <vector>

#include "src/mttkrp/dispatch.hpp"
#include "src/support/check.hpp"
#include "src/support/index.hpp"

namespace mtk {

Matrix sketched_krp_gram(const std::vector<Matrix>& factors,
                         const KrpSample& sample) {
  const int n = static_cast<int>(factors.size());
  MTK_CHECK(n >= 2, "sketched_krp_gram needs >= 2 factors");
  const index_t rank = factors.front().cols();
  Matrix v(rank, rank, 0.0);
  std::vector<double> krow(static_cast<std::size_t>(rank));
  for (index_t s = 0; s < sample.count(); ++s) {
    const double w = sample.weights[static_cast<std::size_t>(s)];
    for (index_t r = 0; r < rank; ++r) krow[static_cast<std::size_t>(r)] = 1.0;
    for (int k = 0; k < n; ++k) {
      if (k == sample.skip_mode) continue;
      const index_t i = sample.indices[static_cast<std::size_t>(k)]
                                      [static_cast<std::size_t>(s)];
      const double* row = factors[static_cast<std::size_t>(k)].row(i);
      for (index_t r = 0; r < rank; ++r) {
        krow[static_cast<std::size_t>(r)] *= row[r];
      }
    }
    // Rank-1 update w * k k^T; only the upper triangle, mirrored below.
    for (index_t p = 0; p < rank; ++p) {
      const double wp = w * krow[static_cast<std::size_t>(p)];
      for (index_t q = p; q < rank; ++q) {
        v(p, q) += wp * krow[static_cast<std::size_t>(q)];
      }
    }
  }
  for (index_t p = 0; p < rank; ++p) {
    for (index_t q = 0; q < p; ++q) v(p, q) = v(q, p);
  }
  return v;
}

SketchedNormalEq sketched_normal_eq(const StoredTensor& x,
                                    const std::vector<Matrix>& factors,
                                    const KrpSample& sample,
                                    const MttkrpOptions& opts,
                                    SampledMttkrpStats* stats) {
  SketchedNormalEq eq;
  eq.gram = sketched_krp_gram(factors, sample);
  eq.rhs = mttkrp_sampled(x, factors, sample, opts, stats);
  return eq;
}

SketchedNormalEq sketched_normal_eq_gaussian(
    const DenseTensor& x, const std::vector<Matrix>& factors, int mode,
    index_t sketch_count, Rng& rng) {
  const int n = x.order();
  MTK_CHECK(n >= 2, "sketched_normal_eq_gaussian needs an order >= 2 tensor");
  MTK_CHECK(mode >= 0 && mode < n, "mode ", mode, " out of range");
  MTK_CHECK(sketch_count >= 1, "sketch_count must be >= 1");
  const index_t rank = factors.front().cols();
  const index_t out_rows = x.dim(mode);

  // Per-mode Gaussian vectors g_k^s; the KRP structure means row s of
  // Omega^T K is prod_k (g_k^s . A_k(:, r)) — no I_1*...*I_N work anywhere.
  // The 1/sqrt(S) scale makes P^T P estimate K^T K and Q^T P estimate M.
  std::vector<Matrix> g;  // g[k] is S x I_k
  g.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    g.push_back(k == mode ? Matrix()
                          : Matrix::random_normal(sketch_count, x.dim(k),
                                                  rng));
  }

  const double scale = 1.0 / std::sqrt(static_cast<double>(sketch_count));
  Matrix p(sketch_count, rank, 0.0);
  for (index_t s = 0; s < sketch_count; ++s) {
    double* prow = p.row(s);
    for (index_t r = 0; r < rank; ++r) prow[r] = scale;
    for (int k = 0; k < n; ++k) {
      if (k == mode) continue;
      const Matrix& a = factors[static_cast<std::size_t>(k)];
      const double* gs = g[static_cast<std::size_t>(k)].row(s);
      for (index_t r = 0; r < rank; ++r) {
        double acc = 0.0;
        for (index_t i = 0; i < a.rows(); ++i) acc += gs[i] * a(i, r);
        prow[r] *= acc;
      }
    }
  }

  // Q(s, i) = sum over the mode-i slice of X of value * prod_k g_k^s[i_k]:
  // one pass over the dense tensor per sketch row.
  const shape_t strides = col_major_strides(x.dims());
  Matrix q(sketch_count, out_rows, 0.0);
  multi_index_t idx(static_cast<std::size_t>(n), 0);
  const index_t total = x.size();
  for (index_t lin = 0; lin < total; ++lin) {
    const double v = x[lin];
    if (v == 0.0) continue;
    for (int k = 0; k < n; ++k) {
      idx[static_cast<std::size_t>(k)] =
          (lin / strides[static_cast<std::size_t>(k)]) % x.dim(k);
    }
    const index_t i_out = idx[static_cast<std::size_t>(mode)];
    for (index_t s = 0; s < sketch_count; ++s) {
      double gprod = scale;
      for (int k = 0; k < n; ++k) {
        if (k == mode) continue;
        gprod *= g[static_cast<std::size_t>(k)](
            s, idx[static_cast<std::size_t>(k)]);
      }
      q(s, i_out) += v * gprod;
    }
  }

  SketchedNormalEq eq;
  eq.gram = gemm_tn(p, p);
  eq.rhs = gemm_tn(q, p);
  return eq;
}

Matrix solve_sketched(const SketchedNormalEq& eq) {
  return solve_spd_right(eq.gram, eq.rhs);
}

}  // namespace mtk
