// Statistical leverage scores of a factor matrix's rows — the sampling
// distribution of the randomized MTTKRP backend (CP-ARLS-LEV style, after
// Larsen & Kolda and Bharadwaj et al.).
//
// The leverage score of row i of A (I x R) is
//
//   l_i = a_i^T (A^T A)^+ a_i = || (G^+)^{1/2} a_i ||^2,   G = A^T A,
//
// the squared row norm of A projected onto the column space and whitened:
// sum_i l_i = rank(A), and sampling KRP rows with probability proportional
// to the product of per-mode leverage scores gives the near-optimal
// row-sampling distribution for the CP-ALS least-squares problems without
// ever forming the Khatri-Rao product.
//
// The Gram matrix is an input (leverage_scores_from_gram) because CP-ALS
// already maintains every factor's Gram per sweep — the scores then cost one
// R x R eigendecomposition (Jacobi, src/tensor/eigen_sym.hpp) plus an I x R
// transform, asymptotically free next to an exact MTTKRP.
#pragma once

#include <vector>

#include "src/tensor/matrix.hpp"

namespace mtk {

// l_i from a precomputed Gram matrix G = A^T A. Rank-deficient Grams are
// handled by the eigenvalue pseudo-inverse: eigenvalues below
// rank_tolerance * lambda_max are treated as zero (their directions carry
// no mass, so they contribute no leverage).
std::vector<double> leverage_scores_from_gram(const Matrix& a,
                                              const Matrix& gram,
                                              double rank_tolerance = 1e-12);

// Convenience overload computing the Gram matrix itself.
std::vector<double> leverage_scores(const Matrix& a,
                                    double rank_tolerance = 1e-12);

}  // namespace mtk
