// Ablation: Algorithm 2's traffic as a function of the block size b at
// fixed fast-memory size M. DESIGN.md calls out the choice b ~ (alpha M)^(1/N)
// (Theorem 6.1); this sweep shows (i) traffic falls as b grows, (ii) the
// Eq. (11)-maximal b is at or near the optimum, and (iii) violating
// Eq. (11) (b too large for M) causes thrashing that *increases* traffic.
#include <cstdio>

#include "src/bounds/sequential_bounds.hpp"
#include "src/memsim/traced_mttkrp.hpp"
#include "src/mttkrp/mttkrp.hpp"

int main() {
  std::printf("=== Block-size ablation (Algorithm 2) ===\n");
  const mtk::shape_t dims{30, 30, 30};
  const mtk::index_t rank = 12;
  const mtk::index_t m = 1500;  // Eq. (11) max block size: b = 11

  mtk::TraceProblem tp;
  tp.dims = dims;
  tp.rank = rank;
  tp.mode = 1;

  const mtk::index_t b_max = mtk::max_block_size(3, m);
  std::printf("dims = 30^3, R = %lld, M = %lld, Eq.(11) max b = %lld\n\n",
              static_cast<long long>(rank), static_cast<long long>(m),
              static_cast<long long>(b_max));
  std::printf("%-6s %14s %14s %10s\n", "b", "measured", "Wub(Eq.21)",
              "fits M?");

  for (mtk::index_t b = 1; b <= 16; ++b) {
    const mtk::MemoryStats stats = mtk::measure_traffic(
        m, mtk::ReplacementPolicy::kLru,
        [&](mtk::AccessSink& sink) { mtk::trace_blocked(tp, b, sink); });
    mtk::SeqProblem sp;
    sp.dims = dims;
    sp.rank = rank;
    sp.fast_memory = m;
    const bool fits = mtk::ipow(b, 3) + 3 * b <= m;
    std::printf("%-6lld %14lld %14.0f %10s\n", static_cast<long long>(b),
                static_cast<long long>(stats.traffic()),
                mtk::seq_upper_bound_blocked(sp, b), fits ? "yes" : "NO");
  }

  std::printf("\nReading: traffic decreases until b = %lld (the Eq. (11)\n"
              "maximum); beyond it the block no longer fits and LRU\n"
              "thrashing breaks the Eq. (21) guarantee.\n",
              static_cast<long long>(b_max));
  return 0;
}
