// Minimal google-benchmark-compatible JSON telemetry for the custom-main
// benches (bench_planner, bench_par_scaling drive their own sweeps instead
// of benchmark's timing loop, so they cannot use its reporter directly).
//
// Honors the same flags the library would:
//   --benchmark_format=json          emit JSON instead of the human table
//   --benchmark_out=FILE             write the JSON to FILE
//   --benchmark_out_format=json      accepted (only json is supported)
//
// Emitted shape mirrors benchmark's JSON — a "context" object and a
// "benchmarks" array whose entries carry custom counters — so downstream
// tooling (CI artifact diffing, perf-trajectory plots) can consume
// BENCH_*.json from these benches and from real google-benchmark binaries
// uniformly. In JSON mode the human tables are routed to stderr so stdout
// stays machine-parseable.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace mtk_bench {

class Telemetry {
 public:
  Telemetry(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--benchmark_format=json") == 0) {
        json_ = true;
      } else if (std::strncmp(arg, "--benchmark_out=", 16) == 0) {
        out_path_ = arg + 16;
      } else if (std::strncmp(arg, "--benchmark_out_format=", 23) == 0) {
        // only json is supported; accept and ignore
      }
    }
    if (argc >= 1) executable_ = argv[0];
  }

  // Human-readable tables go here: stdout normally, stderr when stdout is
  // reserved for JSON.
  std::FILE* table() const {
    return json_ && out_path_.empty() ? stderr : stdout;
  }

  void add(std::string name,
           std::vector<std::pair<std::string, double>> counters) {
    rows_.push_back({std::move(name), std::move(counters)});
  }

  // Writes the JSON report (when requested). Returns false if an output
  // file was requested but could not be written.
  bool flush() const {
    if (!json_ && out_path_.empty()) return true;
    std::FILE* out = stdout;
    if (!out_path_.empty()) {
      out = std::fopen(out_path_.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path_.c_str());
        return false;
      }
    }
    std::fprintf(out, "{\n  \"context\": {\n");
    std::fprintf(out, "    \"executable\": \"%s\",\n", executable_.c_str());
    std::fprintf(out,
                 "    \"caveat\": \"simulated-machine counters, not wall "
                 "time\"\n  },\n");
    std::fprintf(out, "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(out, "    {\n      \"name\": \"%s\",\n",
                   row.name.c_str());
      std::fprintf(out, "      \"run_name\": \"%s\",\n", row.name.c_str());
      std::fprintf(out, "      \"run_type\": \"iteration\",\n");
      std::fprintf(out, "      \"iterations\": 1,\n");
      std::fprintf(out, "      \"real_time\": 0.0,\n");
      std::fprintf(out, "      \"cpu_time\": 0.0,\n");
      std::fprintf(out, "      \"time_unit\": \"ns\"");
      for (const auto& [key, value] : row.counters) {
        std::fprintf(out, ",\n      \"%s\": %.17g", key.c_str(), value);
      }
      std::fprintf(out, "\n    }%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    const bool ok = std::ferror(out) == 0;
    if (out != stdout) std::fclose(out);
    return ok;
  }

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> counters;
  };

  bool json_ = false;
  std::string out_path_;
  std::string executable_;
  std::vector<Row> rows_;
};

}  // namespace mtk_bench
