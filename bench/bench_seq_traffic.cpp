// Section VI-A illustration (Theorem 6.1): measured slow-fast memory
// traffic of the sequential algorithms on the two-level memory simulator,
// swept over the fast memory size M, against the paper's bounds:
//
//   Wlb1 (Eq. (4))  memory-dependent lower bound,
//   Wlb2 (Eq. (5))  trivial lower bound,
//   Wub  (Eq. (21)) Algorithm 2 upper bound with b = max per Eq. (11).
//
// The measured Algorithm 2 traffic must sit between max(Wlb1, Wlb2) and
// ~Wub, and the ratio ub/lb stays a modest constant (communication
// optimality to within a constant factor). Algorithm 1 and the
// matmul-based approach are measured for comparison.
#include <cstdio>

#include "src/bounds/sequential_bounds.hpp"
#include "src/memsim/traced_mttkrp.hpp"
#include "src/mttkrp/mttkrp.hpp"

namespace {

void run_config(const mtk::shape_t& dims, mtk::index_t rank, int mode) {
  std::printf("\n--- dims = (");
  for (std::size_t k = 0; k < dims.size(); ++k) {
    std::printf("%s%lld", k ? "," : "", static_cast<long long>(dims[k]));
  }
  std::printf("), R = %lld, mode = %d ---\n", static_cast<long long>(rank),
              mode);
  std::printf("%-8s %-4s %12s %12s %12s %12s %12s %12s %12s %8s\n", "M",
              "b", "alg1", "alg2", "two_step", "matmul", "Wlb1", "Wlb2",
              "Wub", "alg2/lb");

  mtk::TraceProblem tp;
  tp.dims = dims;
  tp.rank = rank;
  tp.mode = mode;

  for (mtk::index_t m : {100, 200, 400, 800, 1600, 3200, 6400}) {
    const mtk::index_t b = mtk::max_block_size(tp.order(), m);

    const mtk::MemoryStats alg1 = mtk::measure_traffic(
        m, mtk::ReplacementPolicy::kLru,
        [&](mtk::AccessSink& sink) { mtk::trace_unblocked(tp, sink); });
    const mtk::MemoryStats alg2 = mtk::measure_traffic(
        m, mtk::ReplacementPolicy::kLru,
        [&](mtk::AccessSink& sink) { mtk::trace_blocked(tp, b, sink); });
    const mtk::MemoryStats two = mtk::measure_traffic(
        m, mtk::ReplacementPolicy::kLru,
        [&](mtk::AccessSink& sink) { mtk::trace_two_step(tp, m, sink); });
    const mtk::MemoryStats mm = mtk::measure_traffic(
        m, mtk::ReplacementPolicy::kLru,
        [&](mtk::AccessSink& sink) { mtk::trace_matmul(tp, m, sink); });

    mtk::SeqProblem sp;
    sp.dims = dims;
    sp.rank = rank;
    sp.fast_memory = m;
    const double wlb1 = mtk::seq_lower_bound_memory(sp);
    const double wlb2 = mtk::seq_lower_bound_trivial(sp);
    const double wub = mtk::seq_upper_bound_blocked(sp, b);
    const double lb = mtk::seq_lower_bound(sp);

    std::printf("%-8lld %-4lld %12lld %12lld %12lld %12lld %12.0f %12.0f "
                "%12.0f %8.2f\n",
                static_cast<long long>(m), static_cast<long long>(b),
                static_cast<long long>(alg1.traffic()),
                static_cast<long long>(alg2.traffic()),
                static_cast<long long>(two.traffic()),
                static_cast<long long>(mm.traffic()), wlb1, wlb2, wub,
                lb > 0 ? static_cast<double>(alg2.traffic()) / lb : 0.0);
  }
}

}  // namespace

int main() {
  std::printf("=== Sequential traffic vs bounds (Theorem 6.1 regime) ===\n");
  std::printf("All numbers are words moved between fast and slow memory.\n");

  run_config({24, 24, 24}, 16, 0);
  run_config({24, 24, 24}, 16, 1);
  run_config({16, 16, 16, 16}, 8, 2);  // order-4 tensor
  run_config({64, 32, 16}, 8, 1);      // non-cubical

  std::printf("\nReading: alg2 must lie in [max(Wlb1,Wlb2), ~Wub]; the\n"
              "alg2/lb column is the constant-factor optimality gap.\n");
  return 0;
}
