// Empirical counterpart of Figure 4: *measured* words moved on the
// simulated distributed machine for Algorithms 3 and 4 across a strong-
// scaling sweep, against the Eq. (14)/(18) cost model, the naive 1D
// parallelization (Aggour-Yener-style, [18]), and the proved lower bounds.
// The tensor is small enough to execute on every rank; the simulator's
// counters are exact, so this validates that the modeled Figure 4 series
// correspond to what the algorithms actually move.
//
// A second sweep runs the same harness on sparse storage (COO and CSF
// backends through the StoredTensor driver): with the block partition the
// collective traffic is identical to dense — Algorithm 3 never communicates
// the tensor — so the sparse curves validate the storage-polymorphic path,
// and the medium-grained column shows the nonzero imbalance the balanced
// partition removes.
#include <cstdio>

#include "bench/bench_telemetry.hpp"
#include "src/bounds/parallel_bounds.hpp"
#include "src/io/frostt_presets.hpp"
#include "src/costmodel/grid_search.hpp"
#include "src/mttkrp/dispatch.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/transport/thread_transport.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace {

using namespace mtk;

std::vector<int> to_int_grid(const std::vector<index_t>& grid) {
  std::vector<int> g;
  for (index_t v : grid) g.push_back(static_cast<int>(v));
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  mtk_bench::Telemetry tele(argc, argv);
  std::FILE* out = tele.table();
  const shape_t dims{32, 32, 32};
  const index_t rank = 16;
  const int mode = 0;

  Rng rng(20180521);
  const DenseTensor x = DenseTensor::random_normal(dims, rng);
  std::vector<Matrix> factors;
  for (index_t d : dims) factors.push_back(Matrix::random_normal(d, rank, rng));
  const Matrix reference = mttkrp_reference(x, factors, mode);

  CostProblem cp;
  cp.dims = dims;
  cp.rank = rank;

  std::fprintf(out, "=== Measured strong scaling on the simulated machine ===\n");
  std::fprintf(out, "dims = 32^3, R = 16, mode = 0; words = bottleneck rank's "
              "sent+received\n\n");
  std::fprintf(out, "%-6s %10s %10s %10s %10s %10s %10s %8s\n", "P", "alg3",
               "eq14x2", "alg4", "eq18x2", "naive1D", "lowerbnd", "ok?");

  for (int p = 1; p <= 4096; p *= 4) {
    // Algorithm 3 with the Eq. (14)-optimal grid.
    const GridSearchResult stat = optimal_stationary_grid(cp, p);
    const ParMttkrpResult r3 =
        par_mttkrp_stationary(x, factors, mode, to_int_grid(stat.grid));

    // Algorithm 4 with the Eq. (18)-optimal grid.
    const GridSearchResult gen = optimal_general_grid(cp, p);
    const ParMttkrpResult r4 =
        par_mttkrp_general(x, factors, mode, to_int_grid(gen.grid));

    // Naive 1D baseline: all processors along mode 0 (only valid while
    // P <= I_0); otherwise fall back to the flattest feasible grid.
    ParMttkrpResult naive = r3;
    if (p <= dims[0]) {
      naive = par_mttkrp_stationary(x, factors, mode, {p, 1, 1});
    } else if (p <= dims[0] * dims[1]) {
      naive = par_mttkrp_stationary(
          x, factors, mode, {static_cast<int>(dims[0]), p / static_cast<int>(dims[0]), 1});
    }

    ParProblem lb;
    lb.dims = dims;
    lb.rank = rank;
    lb.procs = p;
    const double bound = par_lower_bound(lb);

    const bool correct =
        max_abs_diff(r3.b, reference) < 1e-8 &&
        max_abs_diff(r4.b, reference) < 1e-8 &&
        static_cast<double>(r3.max_words_moved) >= bound &&
        static_cast<double>(r4.max_words_moved) >= bound;

    std::fprintf(out, "%-6d %10lld %10.0f %10lld %10.0f %10lld %10.0f %8s\n",
                 p, static_cast<long long>(r3.max_words_moved),
                 2.0 * stationary_comm_cost(cp, stat.grid),
                 static_cast<long long>(r4.max_words_moved),
                 2.0 * general_comm_cost(cp, gen.grid),
                 static_cast<long long>(naive.max_words_moved), bound,
                 correct ? "yes" : "NO");
    tele.add("par_scaling/dense/P:" + std::to_string(p),
             {{"alg3_words", static_cast<double>(r3.max_words_moved)},
              {"alg3_messages", static_cast<double>(r3.max_messages)},
              {"eq14_x2", 2.0 * stationary_comm_cost(cp, stat.grid)},
              {"alg4_words", static_cast<double>(r4.max_words_moved)},
              {"alg4_messages", static_cast<double>(r4.max_messages)},
              {"eq18_x2", 2.0 * general_comm_cost(cp, gen.grid)},
              {"naive1d_words",
               static_cast<double>(naive.max_words_moved)},
              {"lower_bound", bound},
              {"correct", correct ? 1.0 : 0.0}});
  }

  std::fprintf(out,
               "\nReading: alg3/alg4 are measured; eq14x2/eq18x2 are the\n"
               "model (x2 converts sent-words to sent+received); both\n"
               "algorithms verify bit-consistent results, always beat the\n"
               "naive 1D distribution, and never go below the lower bound.\n");

  // -------------------------------------------------------------------------
  // Real-transport check: the same Algorithm 3 schedule executed on the
  // counting simulator and on real std::thread ranks. The factor output must
  // be bit-identical, the word/message counters must agree exactly (the
  // threads genuinely move what the simulator predicts), and the thread rows
  // gain measured comm/compute wall-clock columns.
  std::fprintf(out, "\n=== Simulated vs thread transport (Alg. 3, dense) "
                    "===\n");
  std::fprintf(out, "words/messages are the bottleneck rank; comm/compute "
                    "are measured\nwall-clock seconds inside the thread "
                    "transport; bitexact compares the\nassembled output "
                    "against the simulator run byte-for-byte\n\n");
  std::fprintf(out, "%-6s %-8s %10s %9s %11s %11s %9s\n", "P", "backend",
               "words", "messages", "comm_s", "compute_s", "bitexact");
  for (int p = 4; p <= 64; p *= 4) {
    const GridSearchResult stat = optimal_stationary_grid(cp, p);
    const std::vector<int> g = to_int_grid(stat.grid);
    const StoredTensor xd = StoredTensor::dense_view(x);

    SimTransport sim(p);
    const ParMttkrpResult rs = par_mttkrp_stationary(sim, xd, factors, mode, g);
    ThreadTransport thr(p);
    const ParMttkrpResult rt = par_mttkrp_stationary(thr, xd, factors, mode, g);

    const bool bitexact = max_abs_diff(rs.b, rt.b) == 0.0 &&
                          rs.max_words_moved == rt.max_words_moved &&
                          rs.max_messages == rt.max_messages &&
                          rs.total_words_sent == rt.total_words_sent;
    std::fprintf(out, "%-6d %-8s %10lld %9lld %11.6f %11.6f %9s\n", p, "sim",
                 static_cast<long long>(rs.max_words_moved),
                 static_cast<long long>(rs.max_messages), rs.comm_seconds,
                 rs.compute_seconds, "-");
    std::fprintf(out, "%-6d %-8s %10lld %9lld %11.6f %11.6f %9s\n", p,
                 "threads", static_cast<long long>(rt.max_words_moved),
                 static_cast<long long>(rt.max_messages), rt.comm_seconds,
                 rt.compute_seconds, bitexact ? "yes" : "NO");
    tele.add("par_scaling/transport/P:" + std::to_string(p),
             {{"words", static_cast<double>(rt.max_words_moved)},
              {"messages", static_cast<double>(rt.max_messages)},
              {"sim_comm_s", rs.comm_seconds},
              {"sim_compute_s", rs.compute_seconds},
              {"measured_comm_s", rt.comm_seconds},
              {"measured_compute_s", rt.compute_seconds},
              {"bitexact", bitexact ? 1.0 : 0.0}});
  }
  std::fprintf(out,
               "\nthe thread rows move exactly the simulator's words and\n"
               "reproduce its output bit-for-bit; the measured columns are\n"
               "what --transport=threads adds over the counting machine.\n");

  // -------------------------------------------------------------------------
  // Sparse strong scaling: same harness, COO and CSF backends.
  const double density = 0.02;
  const SparseTensor coo = SparseTensor::random_sparse(dims, density, rng);
  const CsfTensor csf = CsfTensor::from_coo(coo);
  std::vector<Matrix> sfactors;
  for (index_t d : dims) {
    sfactors.push_back(Matrix::random_normal(d, rank, rng));
  }
  const Matrix sparse_ref = mttkrp_coo(coo, sfactors, mode);
  const DenseTensor densified = coo.to_dense();
  const StoredTensor x_coo = StoredTensor::coo_view(coo);
  const StoredTensor x_csf = StoredTensor::csf_view(csf);

  std::fprintf(out,
               "\n=== Sparse strong scaling (nnz = %lld, density = %.3f) "
               "===\n",
               static_cast<long long>(coo.nnz()), density);
  std::fprintf(out,
               "words are identical across backends under the block scheme;\n"
               "medium = bottleneck words under the nonzero-balanced\n"
               "(medium-grained) partition. imb = max/mean nnz per rank for\n"
               "each partition (1.00 = perfectly balanced compute)\n\n");
  std::fprintf(out, "%-6s %10s %10s %10s %10s %9s %9s %8s\n", "P", "dense",
               "coo", "csf", "medium", "blk-imb", "med-imb", "ok?");
  for (int p = 1; p <= 4096; p *= 4) {
    const GridSearchResult stat = optimal_stationary_grid(cp, p);
    const std::vector<int> g = to_int_grid(stat.grid);
    const ParMttkrpResult rd =
        par_mttkrp_stationary(densified, sfactors, mode, g);
    const ParMttkrpResult rc =
        par_mttkrp_stationary(x_coo, sfactors, mode, g);
    const ParMttkrpResult rf =
        par_mttkrp_stationary(x_csf, sfactors, mode, g);
    const ParMttkrpResult rm = par_mttkrp_stationary(
        x_coo, sfactors, mode, g, SparsePartitionScheme::kMediumGrained);
    // Per-rank nonzero balance of both partitions (max/mean; the planner
    // reports the same stats in its plan table).
    const ProcessorGrid pgrid(g);
    const BlockNnzStats blk =
        count_block_nnz(coo, pgrid, SparsePartitionScheme::kBlock);
    const BlockNnzStats med =
        count_block_nnz(coo, pgrid, SparsePartitionScheme::kMediumGrained);
    const bool correct = max_abs_diff(rc.b, sparse_ref) < 1e-8 &&
                         max_abs_diff(rf.b, sparse_ref) < 1e-8 &&
                         max_abs_diff(rm.b, sparse_ref) < 1e-8 &&
                         rc.max_words_moved == rd.max_words_moved &&
                         rf.max_words_moved == rd.max_words_moved;
    std::fprintf(out, "%-6d %10lld %10lld %10lld %10lld %8.2fx %8.2fx %8s\n",
                 p, static_cast<long long>(rd.max_words_moved),
                 static_cast<long long>(rc.max_words_moved),
                 static_cast<long long>(rf.max_words_moved),
                 static_cast<long long>(rm.max_words_moved),
                 blk.imbalance(), med.imbalance(), correct ? "yes" : "NO");
    tele.add("par_scaling/sparse/P:" + std::to_string(p),
             {{"dense_words", static_cast<double>(rd.max_words_moved)},
              {"coo_words", static_cast<double>(rc.max_words_moved)},
              {"csf_words", static_cast<double>(rf.max_words_moved)},
              {"medium_words", static_cast<double>(rm.max_words_moved)},
              {"block_imbalance", blk.imbalance()},
              {"medium_imbalance", med.imbalance()},
              {"correct", correct ? 1.0 : 0.0}});
  }
  std::fprintf(out,
               "\nmax/mean nnz per rank (bottleneck compute): block vs\n"
               "medium-grained across the sweep; the medium partition holds\n"
               "the compute imbalance near 1 as P grows.\n");

  // -------------------------------------------------------------------------
  // FROSTT-shape presets: the same strong-scaling harness on synthetic
  // tensors mimicking real dataset shapes (hub-skewed, rectangular), where
  // the block partition's nonzero imbalance actually bites.
  std::fprintf(out, "\n=== FROSTT-shape presets (gen_tns --preset) ===\n");
  std::fprintf(out, "%-12s %-6s %10s %10s %9s %9s %8s\n", "preset", "P",
               "block", "medium", "blk-imb", "med-imb", "ok?");
  for (const FrosttPreset& preset : frostt_presets()) {
    const SparseTensor px = make_frostt_like(preset, 7);
    const StoredTensor ph = StoredTensor::coo_view(px);
    std::vector<Matrix> pfactors;
    for (index_t d : preset.dims) {
      pfactors.push_back(Matrix::random_normal(d, rank, rng));
    }
    const Matrix pref = mttkrp_coo(px, pfactors, mode);
    CostProblem pcp;
    pcp.dims = preset.dims;
    pcp.rank = rank;
    for (int p = 16; p <= 256; p *= 4) {
      const GridSearchResult stat = optimal_stationary_grid(pcp, p);
      const std::vector<int> g = to_int_grid(stat.grid);
      const ParMttkrpResult rb = par_mttkrp_stationary(ph, pfactors, mode, g);
      const ParMttkrpResult rm = par_mttkrp_stationary(
          ph, pfactors, mode, g, SparsePartitionScheme::kMediumGrained);
      const ProcessorGrid pgrid(g);
      const BlockNnzStats blk =
          count_block_nnz(px, pgrid, SparsePartitionScheme::kBlock);
      const BlockNnzStats med =
          count_block_nnz(px, pgrid, SparsePartitionScheme::kMediumGrained);
      const bool correct = max_abs_diff(rb.b, pref) < 1e-8 &&
                           max_abs_diff(rm.b, pref) < 1e-8;
      std::fprintf(out, "%-12s %-6d %10lld %10lld %8.2fx %8.2fx %8s\n",
                   preset.name, p,
                   static_cast<long long>(rb.max_words_moved),
                   static_cast<long long>(rm.max_words_moved),
                   blk.imbalance(), med.imbalance(), correct ? "yes" : "NO");
      tele.add(std::string("par_scaling/preset:") + preset.name +
                   "/P:" + std::to_string(p),
               {{"nnz", static_cast<double>(px.nnz())},
                {"block_words", static_cast<double>(rb.max_words_moved)},
                {"medium_words", static_cast<double>(rm.max_words_moved)},
                {"block_imbalance", blk.imbalance()},
                {"medium_imbalance", med.imbalance()},
                {"correct", correct ? 1.0 : 0.0}});
    }
  }
  std::fprintf(out,
               "\npresets scale the published FROSTT shapes down to bench\n"
               "size; the skewed slices drive blk-imb well above 1, which\n"
               "is the regime the medium-grained partition exists for.\n");
  return tele.flush() ? 0 : 2;
}
