// Serving-latency bench: drives MttkrpServer in-process with concurrent
// client threads and reports exact client-observed per-request percentiles
// (sorted latency vectors, not the histogram's power-of-two buckets),
// throughput, and the plan-cache hit rate after warmup.
//
// Rows:
//   serve/mttkrp/w{1,2,4}  same-key mttkrp flood at 1/2/4 workers
//   serve/mixed/w2         mttkrp + streaming appends + warm CP-ALS refines
//
// Emits google-benchmark-compatible JSON via bench_telemetry.hpp
// (--benchmark_format=json --benchmark_out=BENCH_serve.json); CI validates
// the output with validate_telemetry --bench (serve family: p50<=p95<=p99,
// positive throughput, hit rate > 0.9 somewhere after warmup).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_telemetry.hpp"
#include "src/obs/metrics.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/serve/server.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace {

using namespace mtk;
using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::int64_t counter_value(const char* name) {
  return MetricsRegistry::global().counter(name).value();
}

std::string mttkrp_line(int id, int mode, int seed) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"id\":%d,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":8,"
                "\"mode\":%d,\"seed\":%d}",
                id, mode, seed);
  return buf;
}

struct RunResult {
  std::vector<double> latencies_us;  // client-observed, sorted
  double wall_us = 0.0;
  double hit_rate = 0.0;  // plan-cache, post-warmup
  std::int64_t batches = 0;
  std::int64_t rebuilds = 0;
  std::int64_t warm_starts = 0;
};

// Runs `clients` threads, each issuing synchronous requests produced by
// `make_line(client, i)`, after a warmup that plans every (mode) key once.
RunResult run_load(const SparseTensor& tensor, int workers, int clients,
                   int per_client, bool mixed) {
  ServeOptions sopts;
  sopts.workers = workers;
  sopts.batch_window = 8;
  MttkrpServer server(sopts);
  server.registry().load("t", tensor, StorageFormat::kCsf);

  for (int mode = 0; mode < 3; ++mode) {
    server.handle(mttkrp_line(mode, mode, 7));
  }
  if (mixed) {
    server.handle(
        "{\"id\":3,\"op\":\"refine\",\"tensor\":\"t\",\"rank\":4,"
        "\"iters\":2}");
  }

  const std::size_t hits0 = PlanCache::global().hits();
  const std::size_t misses0 = PlanCache::global().misses();
  const std::int64_t batches0 = counter_value("mtk.serve.batches");
  const std::int64_t rebuilds0 = counter_value("mtk.serve.rebuilds");
  const std::int64_t warm0 = counter_value("mtk.serve.warm_starts");

  RunResult result;
  std::mutex mu;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(1000 + c));
      std::vector<double> local;
      local.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        std::string line;
        if (mixed && c == clients - 1 && i % 3 == 0) {
          // Streaming tail: alternate small appends and warm refines.
          if (i % 6 == 0) {
            char buf[200];
            std::snprintf(
                buf, sizeof(buf),
                "{\"id\":%d,\"op\":\"append\",\"tensor\":\"t\",\"entries\":"
                "[[%lld,%lld,%lld,0.25]]}",
                9000 + i, static_cast<long long>(rng.uniform_int(0, 23)),
                static_cast<long long>(rng.uniform_int(0, 19)),
                static_cast<long long>(rng.uniform_int(0, 15)));
            line = buf;
          } else {
            char buf[120];
            std::snprintf(buf, sizeof(buf),
                          "{\"id\":%d,\"op\":\"refine\",\"tensor\":\"t\","
                          "\"rank\":4,\"iters\":2}",
                          9000 + i);
            line = buf;
          }
        } else {
          line = mttkrp_line(100 * c + i, c % 2, 50 + i);
        }
        const Clock::time_point start = Clock::now();
        server.handle(line);
        local.push_back(micros_since(start));
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_us.insert(result.latencies_us.end(), local.begin(),
                                 local.end());
    });
  }
  for (auto& t : threads) t.join();
  server.wait_idle();
  result.wall_us = micros_since(t0);

  const std::size_t hits = PlanCache::global().hits() - hits0;
  const std::size_t misses = PlanCache::global().misses() - misses0;
  result.hit_rate = hits + misses == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(hits + misses);
  result.batches = counter_value("mtk.serve.batches") - batches0;
  result.rebuilds = counter_value("mtk.serve.rebuilds") - rebuilds0;
  result.warm_starts = counter_value("mtk.serve.warm_starts") - warm0;
  std::sort(result.latencies_us.begin(), result.latencies_us.end());
  return result;
}

void report(mtk_bench::Telemetry& tele, std::FILE* out,
            const std::string& name, const RunResult& r) {
  const double requests = static_cast<double>(r.latencies_us.size());
  const double throughput =
      r.wall_us > 0.0 ? requests / (r.wall_us * 1e-6) : 0.0;
  const double p50 = quantile(r.latencies_us, 0.50);
  const double p95 = quantile(r.latencies_us, 0.95);
  const double p99 = quantile(r.latencies_us, 0.99);
  std::fprintf(out,
               "%-18s %5.0f req %8.1f req/s  p50 %8.1fus  p95 %8.1fus  "
               "p99 %8.1fus  hit %.3f  batches %lld\n",
               name.c_str(), requests, throughput, p50, p95, p99, r.hit_rate,
               static_cast<long long>(r.batches));
  tele.add(name, {{"requests", requests},
                  {"throughput_rps", throughput},
                  {"p50_us", p50},
                  {"p95_us", p95},
                  {"p99_us", p99},
                  {"plan_hit_rate", r.hit_rate},
                  {"batches", static_cast<double>(r.batches)},
                  {"rebuilds", static_cast<double>(r.rebuilds)},
                  {"warm_starts", static_cast<double>(r.warm_starts)}});
}

}  // namespace

int main(int argc, char** argv) {
  mtk_bench::Telemetry tele(argc, argv);
  std::FILE* out = tele.table();

  Rng rng(20180521);
  const shape_t dims{24, 20, 16};
  const SparseTensor tensor = SparseTensor::random_sparse(dims, 0.05, rng);

  std::fprintf(out, "=== Serving latency (client-observed, exact) ===\n");
  std::fprintf(out,
               "dims = 24x20x16, R = 8, density 0.05; percentiles from\n"
               "sorted per-request latencies; hit rate excludes warmup\n\n");

  for (int workers : {1, 2, 4}) {
    const RunResult r =
        run_load(tensor, workers, /*clients=*/4, /*per_client=*/15,
                 /*mixed=*/false);
    report(tele, out, "serve/mttkrp/w" + std::to_string(workers), r);
  }
  {
    const RunResult r = run_load(tensor, /*workers=*/2, /*clients=*/4,
                                 /*per_client=*/15, /*mixed=*/true);
    report(tele, out, "serve/mixed/w2", r);
  }

  if (!tele.flush()) return 2;
  return 0;
}
