// Section VII extension: multi-mode MTTKRP reuse. Two tables:
//  (a) computation — scalar multiplies of the dimension tree vs N separate
//      MTTKRPs, across tensor orders (the Phan et al. [13] saving);
//  (b) communication — bottleneck words of the all-modes parallel algorithm
//      (gather each factor once) vs N separate Algorithm-3 sweeps.
#include <cstdio>

#include "src/mttkrp/dim_tree.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/par_multi_mttkrp.hpp"
#include "src/support/rng.hpp"

int main() {
  using namespace mtk;

  std::printf("=== Multi-mode MTTKRP reuse (Section VII extension) ===\n\n");

  // (a) Computation.
  std::printf("(a) scalar multiplies: dimension tree vs N separate "
              "MTTKRPs\n");
  std::printf("%-16s %6s %14s %14s %8s\n", "dims", "R", "separate", "tree",
              "saving");
  struct Config {
    shape_t dims;
    index_t rank;
  };
  const std::vector<Config> configs{
      {{32, 32}, 16},
      {{24, 24, 24}, 16},
      {{12, 12, 12, 12}, 16},
      {{8, 8, 8, 8, 8}, 16},
      {{6, 6, 6, 6, 6, 6}, 16},
  };
  Rng rng(14);
  for (const Config& cfg : configs) {
    DenseTensor x = DenseTensor::random_normal(cfg.dims, rng);
    std::vector<Matrix> factors;
    for (index_t d : cfg.dims) {
      factors.push_back(Matrix::random_normal(d, cfg.rank, rng));
    }
    const AllModesResult tree = mttkrp_all_modes_tree(x, factors);
    const AllModesResult sep = mttkrp_all_modes_separate(x, factors);
    char dims_str[64];
    int off = 0;
    for (std::size_t k = 0; k < cfg.dims.size(); ++k) {
      off += std::snprintf(dims_str + off, sizeof(dims_str) - off, "%s%lld",
                           k ? "x" : "",
                           static_cast<long long>(cfg.dims[k]));
    }
    std::printf("%-16s %6lld %14lld %14lld %7.2fx\n", dims_str,
                static_cast<long long>(cfg.rank),
                static_cast<long long>(sep.multiplies),
                static_cast<long long>(tree.multiplies),
                static_cast<double>(sep.multiplies) /
                    static_cast<double>(tree.multiplies));
  }

  // (b) Communication.
  std::printf("\n(b) bottleneck words: all-modes algorithm vs N separate "
              "Algorithm-3 sweeps\n");
  std::printf("%-10s %14s %14s %8s\n", "grid", "separate", "all-modes",
              "saving");
  const shape_t dims{24, 24, 24};
  const index_t rank = 8;
  DenseTensor x = DenseTensor::random_normal(dims, rng);
  std::vector<Matrix> factors;
  for (index_t d : dims) factors.push_back(Matrix::random_normal(d, rank, rng));

  for (const std::vector<int>& grid :
       {std::vector<int>{2, 2, 2}, std::vector<int>{4, 2, 2},
        std::vector<int>{4, 4, 2}, std::vector<int>{4, 4, 4}}) {
    int p = grid[0] * grid[1] * grid[2];
    index_t separate = 0;
    for (int mode = 0; mode < 3; ++mode) {
      Machine machine(p);
      separate +=
          par_mttkrp_stationary(machine, x, factors, mode, grid)
              .max_words_moved;
    }
    const ParAllModesResult all = par_mttkrp_all_modes(x, factors, grid);
    std::printf("%dx%dx%-6d %14lld %14lld %7.2fx\n", grid[0], grid[1],
                grid[2], static_cast<long long>(separate),
                static_cast<long long>(all.max_words_moved),
                static_cast<double>(separate) /
                    static_cast<double>(all.max_words_moved));
  }

  std::printf("\nReading: the tree's computation saving grows with N; the\n"
              "all-modes communication saving is ~N/2 per sweep (gathers\n"
              "shrink from N(N-1) to N, reduce-scatters stay N).\n");
  return 0;
}
