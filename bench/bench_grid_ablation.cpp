// Ablation: the effect of the processor-grid shape on Algorithm 3's
// communication at fixed P = 64. Shows why the Eq. (14)-optimal grid
// matters: degenerate (1D / 2D) grids replicate large factor matrices and
// move many times more words — the gap the paper's Section VI-B analysis
// predicts between tensor-aware and matricized parallelizations.
#include <cstdio>

#include "src/costmodel/grid_search.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/support/rng.hpp"

int main() {
  using namespace mtk;
  const shape_t dims{64, 32, 16};  // skewed on purpose
  const index_t rank = 8;
  const int mode = 1;
  const int p = 64;

  Rng rng(777);
  const DenseTensor x = DenseTensor::random_normal(dims, rng);
  std::vector<Matrix> factors;
  for (index_t d : dims) factors.push_back(Matrix::random_normal(d, rank, rng));
  const Matrix reference = mttkrp_reference(x, factors, mode);

  CostProblem cp;
  cp.dims = dims;
  cp.rank = rank;

  std::printf("=== Grid-shape ablation, Algorithm 3, P = 64 ===\n");
  std::printf("dims = (64,32,16), R = 8, mode = 1\n\n");
  std::printf("%-12s %12s %12s %8s\n", "grid", "measured", "model(x2)",
              "ok?");

  const std::vector<std::vector<int>> grids{
      {4, 4, 4},    // balanced
      {8, 4, 2},    // proportional to dims
      {64, 1, 1},   // 1D over the largest mode (Aggour-Yener style)
      {1, 32, 2},   // 1D-ish over the output mode
      {16, 4, 1},   // 2D
      {2, 2, 16},   // deliberately bad: most processors on smallest mode
  };

  double best = 1e30;
  std::vector<int> best_grid;
  for (const auto& grid : grids) {
    const ParMttkrpResult r = par_mttkrp_stationary(x, factors, mode, grid);
    std::vector<index_t> g64(grid.begin(), grid.end());
    const double model = 2.0 * stationary_comm_cost(cp, g64);
    const bool ok = max_abs_diff(r.b, reference) < 1e-8;
    std::printf("%2dx%2dx%-6d %12lld %12.0f %8s\n", grid[0], grid[1],
                grid[2], static_cast<long long>(r.max_words_moved), model,
                ok ? "yes" : "NO");
    if (static_cast<double>(r.max_words_moved) < best) {
      best = static_cast<double>(r.max_words_moved);
      best_grid = grid;
    }
  }

  const GridSearchResult opt = optimal_stationary_grid(cp, p);
  std::printf("\nEq. (14)-optimal grid: %lldx%lldx%lld (model %0.f sent "
              "words)\n",
              static_cast<long long>(opt.grid[0]),
              static_cast<long long>(opt.grid[1]),
              static_cast<long long>(opt.grid[2]), opt.cost);
  std::printf("Best measured grid:    %dx%dx%d\n", best_grid[0],
              best_grid[1], best_grid[2]);
  return 0;
}
