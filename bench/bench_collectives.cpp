// Collective-algorithm ablation: bucket (ring) vs recursive
// doubling/halving schedules. Words per rank are identical — both are
// bandwidth-optimal — while message counts drop from q-1 to log2(q),
// quantifying the Section VI-B remark that very large P needs more
// latency-efficient collectives than the bucket algorithms the paper's
// analysis assumes.
#include <cstdio>
#include <numeric>

#include "src/parsim/collective_variants.hpp"
#include "src/parsim/collectives.hpp"
#include "src/parsim/distribution.hpp"
#include "src/support/rng.hpp"

int main() {
  using namespace mtk;
  std::printf("=== Collective schedules: bucket ring vs recursive ===\n");
  std::printf("All-Gather of w = 256 words per member\n\n");
  std::printf("%-6s %16s %16s %12s %12s\n", "q", "words/rank(ring)",
              "words/rank(rec)", "msgs(ring)", "msgs(rec)");

  Rng rng(99);
  for (int q : {2, 4, 8, 16, 64, 256}) {
    std::vector<int> group(static_cast<std::size_t>(q));
    std::iota(group.begin(), group.end(), 0);
    std::vector<std::vector<double>> contribs(static_cast<std::size_t>(q));
    for (auto& c : contribs) {
      c.resize(256);
      rng.fill_normal(c);
    }

    Machine ring(q), rec(q);
    all_gather_bucket(ring, group, contribs);
    all_gather_doubling(rec, group, contribs);
    std::printf("%-6d %16lld %16lld %12lld %12lld\n", q,
                static_cast<long long>(ring.stats(0).words_sent),
                static_cast<long long>(rec.stats(0).words_sent),
                static_cast<long long>(max_messages_sent(ring, group)),
                static_cast<long long>(max_messages_sent(rec, group)));
  }

  std::printf("\nReduce-Scatter of q x 64-word chunks\n\n");
  std::printf("%-6s %16s %16s %12s %12s\n", "q", "words/rank(ring)",
              "words/rank(rec)", "msgs(ring)", "msgs(rec)");
  for (int q : {2, 4, 8, 16, 64, 256}) {
    std::vector<int> group(static_cast<std::size_t>(q));
    std::iota(group.begin(), group.end(), 0);
    const index_t len = static_cast<index_t>(q) * 64;
    std::vector<std::vector<double>> inputs(
        static_cast<std::size_t>(q),
        std::vector<double>(static_cast<std::size_t>(len), 1.0));

    Machine ring(q), rec(q);
    reduce_scatter_bucket(ring, group, inputs, flat_chunk_sizes(len, q));
    reduce_scatter_halving(rec, group, inputs);
    std::printf("%-6d %16lld %16lld %12lld %12lld\n", q,
                static_cast<long long>(ring.stats(0).words_sent),
                static_cast<long long>(rec.stats(0).words_sent),
                static_cast<long long>(max_messages_sent(ring, group)),
                static_cast<long long>(max_messages_sent(rec, group)));
  }

  std::printf("\nReading: identical bandwidth, log2(q) vs q-1 latency —\n"
              "the bucket schedule the paper assumes is bandwidth-optimal;\n"
              "the recursive schedules matter once latency dominates.\n");
  return 0;
}
