// Sparse-storage MTTKRP shootout (google-benchmark; run with
// --benchmark_format=json for the BENCH_*.json shape): COO kernel vs CSF
// kernel vs densify-then-blocked, across densities 1e-4 .. 1e-1 on a cubic
// order-3 tensor.
//
// Expectations: the dense blocked kernel does O(I^3) work regardless of
// density, so both sparse kernels win by orders of magnitude at low density.
// Between the sparse kernels, CSF wins as density falls below ~1e-2 — fibers
// share factor-row loads the COO kernel repeats per nonzero, and the
// root-mode tree writes disjoint output rows where parallel COO must reduce
// scratch copies. Set OMP_NUM_THREADS (e.g. 4) to size the *Omp variants.
//
// Densities are encoded as negative powers of ten in the benchmark args
// (range(0) = 4 means 1e-4); range(1) is the rank.
#include <benchmark/benchmark.h>

#include "src/mttkrp/dispatch.hpp"
#include "src/support/rng.hpp"

namespace {

using namespace mtk;

constexpr index_t kDim = 96;
constexpr int kMode = 0;  // output mode; CSF trees are rooted here

struct Fixture {
  SparseTensor coo;
  CsfTensor csf;
  std::vector<Matrix> factors;
};

Fixture make_fixture(double density, index_t rank) {
  Rng rng(20240);
  const shape_t dims{kDim, kDim, kDim};
  Fixture f;
  f.coo = SparseTensor::random_sparse(dims, density, rng);
  f.csf = CsfTensor::from_coo(f.coo, kMode);
  for (index_t d : dims) {
    f.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return f;
}

double density_from_range(benchmark::State& state) {
  double d = 1.0;
  for (index_t i = 0; i < state.range(0); ++i) d /= 10.0;
  return d;
}

void annotate(benchmark::State& state, const Fixture& f) {
  state.counters["nnz"] = static_cast<double>(f.coo.nnz());
  state.counters["csf_words"] = static_cast<double>(f.csf.storage_words());
  state.SetItemsProcessed(state.iterations() * f.coo.nnz() *
                          f.factors.front().cols());
}

void BM_Coo(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    Matrix b = mttkrp_coo(f.coo, f.factors, kMode, /*parallel=*/false);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

void BM_CooOmp(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    Matrix b = mttkrp_coo(f.coo, f.factors, kMode, /*parallel=*/true);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

void BM_Csf(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    Matrix b = mttkrp_csf(f.csf, f.factors, kMode, /*parallel=*/false);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

void BM_CsfOmp(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    Matrix b = mttkrp_csf(f.csf, f.factors, kMode, /*parallel=*/true);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

// The dense baseline a sparse workload would otherwise pay: materialize once
// (outside the timed loop) and run the communication-optimal blocked kernel.
void BM_DensifiedBlocked(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  const DenseTensor dense = f.coo.to_dense();
  const index_t block = max_block_size(3, index_t{1} << 15);
  for (auto _ : state) {
    Matrix b = mttkrp_blocked(dense, f.factors, kMode, block);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

// One-off conversion costs, so the steady-state numbers above can be put
// against the amortized setup.
void BM_BuildCsf(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    CsfTensor csf = CsfTensor::from_coo(f.coo, kMode);
    benchmark::DoNotOptimize(&csf);
  }
  annotate(state, f);
}

#define MTK_DENSITY_ARGS                                                \
  ->Args({4, 16})->Args({3, 16})->Args({2, 16})->Args({1, 16})          \
      ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Coo) MTK_DENSITY_ARGS;
BENCHMARK(BM_CooOmp) MTK_DENSITY_ARGS;
BENCHMARK(BM_Csf) MTK_DENSITY_ARGS;
BENCHMARK(BM_CsfOmp) MTK_DENSITY_ARGS;
BENCHMARK(BM_DensifiedBlocked) MTK_DENSITY_ARGS;
BENCHMARK(BM_BuildCsf) MTK_DENSITY_ARGS;

}  // namespace
