// Sparse-storage MTTKRP shootout (google-benchmark; run with
// --benchmark_format=json for the BENCH_*.json shape): COO kernel vs CSF
// kernel vs densify-then-blocked, across densities 1e-4 .. 1e-1 on a cubic
// order-3 tensor.
//
// Expectations: the dense blocked kernel does O(I^3) work regardless of
// density, so both sparse kernels win by orders of magnitude at low density.
// Between the sparse kernels, CSF wins as density falls below ~1e-2 — fibers
// share factor-row loads the COO kernel repeats per nonzero, and the
// root-mode tree writes disjoint output rows where parallel COO must reduce
// scratch copies. Set OMP_NUM_THREADS (e.g. 4) to size the *Omp variants.
//
// Densities are encoded as negative powers of ten in the benchmark args
// (range(0) = 4 means 1e-4); range(1) is the rank.
//
// The kernel-variant sweep (BM_*Variant*) times every parallel reduction
// schedule (privatized scratch-and-merge / atomic / owner-computed tiles)
// across thread counts on a skewed gen_tns-style tensor — the regime where
// the seed's critical-section schedule pays thread-count full-output
// copies. The fused sweep compares the memoized multi-tree all-modes walk
// against N independent per-mode calls (reuse factor and CSF-rebuild
// counters are reported). CI uploads this binary's JSON as
// BENCH_kernels.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>

#include "bench/bench_telemetry.hpp"
#include "src/cp/cp_als.hpp"
#include "src/io/frostt_presets.hpp"
#include "src/mttkrp/dispatch.hpp"
#include "src/sketch/krp_sample.hpp"
#include "src/sketch/sampled_mttkrp.hpp"
#include "src/support/omp_threads.hpp"
#include "src/support/rng.hpp"

namespace {

using namespace mtk;

constexpr index_t kDim = 96;
constexpr int kMode = 0;  // output mode; CSF trees are rooted here

struct Fixture {
  SparseTensor coo;
  CsfTensor csf;
  std::vector<Matrix> factors;
};

Fixture make_fixture(double density, index_t rank) {
  Rng rng(20240);
  const shape_t dims{kDim, kDim, kDim};
  Fixture f;
  f.coo = SparseTensor::random_sparse(dims, density, rng);
  f.csf = CsfTensor::from_coo(f.coo, kMode);
  for (index_t d : dims) {
    f.factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return f;
}

double density_from_range(benchmark::State& state) {
  double d = 1.0;
  for (index_t i = 0; i < state.range(0); ++i) d /= 10.0;
  return d;
}

void annotate(benchmark::State& state, const Fixture& f) {
  state.counters["nnz"] = static_cast<double>(f.coo.nnz());
  state.counters["csf_words"] = static_cast<double>(f.csf.storage_words());
  state.SetItemsProcessed(state.iterations() * f.coo.nnz() *
                          f.factors.front().cols());
}

void BM_Coo(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    Matrix b = mttkrp_coo(f.coo, f.factors, kMode, /*parallel=*/false);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

void BM_CooOmp(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    Matrix b = mttkrp_coo(f.coo, f.factors, kMode, /*parallel=*/true);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

void BM_Csf(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    Matrix b = mttkrp_csf(f.csf, f.factors, kMode, /*parallel=*/false);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

void BM_CsfOmp(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    Matrix b = mttkrp_csf(f.csf, f.factors, kMode, /*parallel=*/true);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

// The dense baseline a sparse workload would otherwise pay: materialize once
// (outside the timed loop) and run the communication-optimal blocked kernel.
void BM_DensifiedBlocked(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  const DenseTensor dense = f.coo.to_dense();
  const index_t block = max_block_size(3, index_t{1} << 15);
  for (auto _ : state) {
    Matrix b = mttkrp_blocked(dense, f.factors, kMode, block);
    benchmark::DoNotOptimize(b.data());
  }
  annotate(state, f);
}

// One-off conversion costs, so the steady-state numbers above can be put
// against the amortized setup.
void BM_BuildCsf(benchmark::State& state) {
  const Fixture f = make_fixture(density_from_range(state), state.range(1));
  for (auto _ : state) {
    CsfTensor csf = CsfTensor::from_coo(f.coo, kMode);
    benchmark::DoNotOptimize(&csf);
  }
  annotate(state, f);
}

#define MTK_DENSITY_ARGS                                                \
  ->Args({4, 16})->Args({3, 16})->Args({2, 16})->Args({1, 16})          \
      ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Coo) MTK_DENSITY_ARGS;
BENCHMARK(BM_CooOmp) MTK_DENSITY_ARGS;
BENCHMARK(BM_Csf) MTK_DENSITY_ARGS;
BENCHMARK(BM_CsfOmp) MTK_DENSITY_ARGS;
BENCHMARK(BM_DensifiedBlocked) MTK_DENSITY_ARGS;
BENCHMARK(BM_BuildCsf) MTK_DENSITY_ARGS;

// ---------------------------------------------------------------------------
// Kernel-variant x thread-count sweep on a skewed gen_tns-style tensor.
// range(0) encodes the variant (0 = privatized, 1 = atomic, 2 = tiled),
// range(1) the OpenMP thread count. The tree is rooted at the long mode so
// the output is large: the privatized (seed critical-section) schedule
// zeroes and merges thread-count copies of it, which tiled never touches.

constexpr index_t kSweepRank = 16;

struct SkewFixture {
  SparseTensor coo;
  CsfTensor csf;   // rooted at mode 0 (the long mode)
  std::vector<Matrix> factors;
  int long_mode = 0;
};

const SkewFixture& skew_fixture() {
  static const SkewFixture f = [] {
    SkewFixture fx;
    // The same tensor the kernel smoke and the CI gate measure.
    fx.coo = make_frostt_like(*find_frostt_preset("long-mode"), 7);
    fx.long_mode = 0;
    fx.csf = CsfTensor::from_coo(fx.coo, fx.long_mode);
    Rng rng(7);
    for (index_t d : fx.coo.dims()) {
      fx.factors.push_back(Matrix::random_normal(d, kSweepRank, rng));
    }
    return fx;
  }();
  return f;
}

SparseKernelVariant variant_of(index_t code) {
  switch (code) {
    case 0: return SparseKernelVariant::kPrivatized;
    case 1: return SparseKernelVariant::kAtomic;
    default: return SparseKernelVariant::kTiled;
  }
}

// Scopes a thread-count override to one benchmark run.
using ThreadCountGuard = OmpThreadCountGuard;

void annotate_sweep(benchmark::State& state, const SkewFixture& f) {
  state.counters["nnz"] = static_cast<double>(f.coo.nnz());
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.SetItemsProcessed(state.iterations() * f.coo.nnz() * kSweepRank);
}

void BM_CsfVariant(benchmark::State& state) {
  const SkewFixture& f = skew_fixture();
  const SparseKernelVariant variant = variant_of(state.range(0));
  ThreadCountGuard guard(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    Matrix b = mttkrp_csf(f.csf, f.factors, f.long_mode, /*parallel=*/true,
                          variant);
    benchmark::DoNotOptimize(b.data());
  }
  annotate_sweep(state, f);
}

void BM_CooVariant(benchmark::State& state) {
  const SkewFixture& f = skew_fixture();
  const SparseKernelVariant variant = variant_of(state.range(0));
  ThreadCountGuard guard(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    Matrix b = mttkrp_coo(f.coo, f.factors, f.long_mode, /*parallel=*/true,
                          variant);
    benchmark::DoNotOptimize(b.data());
  }
  annotate_sweep(state, f);
}

#define MTK_VARIANT_ARGS                                                  \
  ->Args({0, 1})->Args({0, 2})->Args({0, 4})->Args({0, 8})               \
      ->Args({1, 4})->Args({2, 1})->Args({2, 2})->Args({2, 4})           \
      ->Args({2, 8})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_CsfVariant) MTK_VARIANT_ARGS;
BENCHMARK(BM_CooVariant) MTK_VARIANT_ARGS;

// ---------------------------------------------------------------------------
// Memoized multi-tree all-modes vs N independent per-mode calls on the
// skewed tensor. Counters report the multiply reuse factor and the CSF
// compressions per iteration (the fused path must show zero).

void BM_AllModesSeparate(benchmark::State& state) {
  const SkewFixture& f = skew_fixture();
  const CsfSet forest = CsfSet::build(f.coo, CsfSetPolicy::kOnePerMode);
  for (auto _ : state) {
    for (int mode = 0; mode < f.coo.order(); ++mode) {
      Matrix b = mttkrp(forest, f.factors, mode);
      benchmark::DoNotOptimize(b.data());
    }
  }
  state.counters["multiplies"] = static_cast<double>(
      csf_separate_multiply_count(forest, kSweepRank));
  state.counters["nnz"] = static_cast<double>(f.coo.nnz());
}

void BM_AllModesFused(benchmark::State& state) {
  const SkewFixture& f = skew_fixture();
  const StoredTensor handle = StoredTensor::coo_view(f.coo);
  const AllModesResult warm = mttkrp_all_modes(handle, f.factors);
  const index_t builds_before = CsfTensor::build_count();
  for (auto _ : state) {
    AllModesResult r = mttkrp_all_modes(handle, f.factors);
    benchmark::DoNotOptimize(r.outputs.front().data());
  }
  const CsfSet forest = CsfSet::build(f.coo, CsfSetPolicy::kOnePerMode);
  state.counters["multiplies"] = static_cast<double>(warm.multiplies);
  state.counters["reuse_factor"] =
      static_cast<double>(csf_separate_multiply_count(forest, kSweepRank)) /
      static_cast<double>(warm.multiplies);
  state.counters["csf_rebuilds_per_iter"] =
      static_cast<double>(CsfTensor::build_count() - builds_before -
                          forest.tree_count()) /
      static_cast<double>(state.iterations());
  state.counters["nnz"] = static_cast<double>(f.coo.nnz());
}

BENCHMARK(BM_AllModesSeparate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllModesFused)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// FROSTT-shape presets (gen_tns --preset): tiled vs privatized CSF at the
// host's thread count. range(0) indexes the preset, range(1) the variant
// code.

const std::vector<SkewFixture>& preset_fixtures() {
  static const std::vector<SkewFixture> fixtures = [] {
    std::vector<SkewFixture> all;
    for (const FrosttPreset& preset : frostt_presets()) {
      SkewFixture fx;
      fx.coo = make_frostt_like(preset, 7);
      fx.long_mode = 0;
      for (int k = 1; k < fx.coo.order(); ++k) {
        if (fx.coo.dim(k) > fx.coo.dim(fx.long_mode)) fx.long_mode = k;
      }
      fx.csf = CsfTensor::from_coo(fx.coo, fx.long_mode);
      Rng rng(11);
      for (index_t d : fx.coo.dims()) {
        fx.factors.push_back(Matrix::random_normal(d, kSweepRank, rng));
      }
      all.push_back(std::move(fx));
    }
    return all;
  }();
  return fixtures;
}

void BM_PresetCsf(benchmark::State& state) {
  const SkewFixture& f =
      preset_fixtures()[static_cast<std::size_t>(state.range(0))];
  const SparseKernelVariant variant = variant_of(state.range(1));
  for (auto _ : state) {
    Matrix b = mttkrp_csf(f.csf, f.factors, f.long_mode, /*parallel=*/true,
                          variant);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetLabel(frostt_presets()[static_cast<std::size_t>(state.range(0))]
                     .name);
  state.counters["nnz"] = static_cast<double>(f.coo.nnz());
}

BENCHMARK(BM_PresetCsf)
    ->Args({0, 0})->Args({0, 2})
    ->Args({1, 0})->Args({1, 2})
    ->Args({2, 0})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Randomized sketched backend sweep (`--sampled`): leverage-sampled MTTKRP
// vs the exact serial CSF kernel on the amazon-shaped preset, across KRP
// sample counts, plus exact vs sketched CP-ALS at epsilon-derived counts.
// Runs outside google-benchmark's timing loop (the draw/kernel split and
// the accuracy counters don't fit its model), so `--sampled` switches to a
// bench_telemetry.hpp sweep; CI uploads the JSON as BENCH_sampled.json.

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

template <class Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, ms_since(t0));
  }
  return best;
}

int run_sampled_sweep(mtk_bench::Telemetry& tele) {
  std::FILE* out = tele.table();
  const FrosttPreset* preset = find_frostt_preset("amazon");
  const SparseTensor coo = make_frostt_like(*preset, 7);
  int mode = 0;
  for (int k = 1; k < coo.order(); ++k) {
    if (coo.dim(k) > coo.dim(mode)) mode = k;
  }
  // Exact runs on the output-rooted tree, sampled routes to a
  // complement-rooted tree (root-level pruning); both prebuilt.
  const CsfSet forest = CsfSet::build(coo, CsfSetPolicy::kOnePerMode);
  const CsfTensor& csf = forest.tree_for(mode);
  Rng rng(7);
  std::vector<Matrix> factors;
  for (index_t d : coo.dims()) {
    factors.push_back(Matrix::random_uniform(d, kSweepRank, rng, 0.1, 1.0));
  }

  std::fprintf(out, "=== Sampled vs exact MTTKRP (%s preset, %lld nnz, "
                    "R = %lld, output mode %d) ===\n",
               preset->name, static_cast<long long>(coo.nnz()),
               static_cast<long long>(kSweepRank), mode);
  const Matrix exact_b = mttkrp_csf(csf, factors, mode, /*parallel=*/false);
  const double exact_norm = exact_b.frobenius_norm();
  const double exact_ms = best_of_ms(3, [&]() {
    Matrix b = mttkrp_csf(csf, factors, mode, /*parallel=*/false);
    benchmark::DoNotOptimize(b.data());
  });
  std::fprintf(out, "exact csf      : %.3f ms (serial)\n\n", exact_ms);
  std::fprintf(out, "%10s %10s %10s %10s %9s %10s %10s\n", "S", "draw_ms",
               "kernel_ms", "speedup", "survivors", "rel_err", "pred_err");

  for (const index_t s : {index_t{512}, index_t{2048}, index_t{8192},
                          index_t{32768}}) {
    Rng srng(derive_seed(7, static_cast<std::uint64_t>(s)));
    const auto td = std::chrono::steady_clock::now();
    const KrpSample sample = sample_krp_leverage(factors, mode, s, srng);
    const double draw_ms = ms_since(td);

    SampledMttkrpStats stats;
    Matrix sampled_b = mttkrp_sampled(forest, factors, sample, {}, &stats);
    const double sampled_ms = best_of_ms(3, [&]() {
      Matrix b = mttkrp_sampled(forest, factors, sample);
      benchmark::DoNotOptimize(b.data());
    });

    double diff_sq = 0.0;
    for (index_t i = 0; i < sampled_b.rows(); ++i) {
      for (index_t r = 0; r < sampled_b.cols(); ++r) {
        const double d = sampled_b(i, r) - exact_b(i, r);
        diff_sq += d * d;
      }
    }
    const double rel_error = std::sqrt(diff_sq) / exact_norm;
    const double pred = predicted_sampling_error(kSweepRank, s);
    const double speedup = exact_ms / std::max(sampled_ms, 1e-9);

    std::fprintf(out, "%10lld %10.3f %10.3f %9.2fx %9lld %10.4f %10.4f\n",
                 static_cast<long long>(s), draw_ms, sampled_ms, speedup,
                 static_cast<long long>(stats.surviving_nonzeros), rel_error,
                 pred);
    tele.add("SampledMttkrp/" + std::string(preset->name) +
                 "/S:" + std::to_string(s),
             {{"nnz", static_cast<double>(coo.nnz())},
              {"sample_count", static_cast<double>(s)},
              {"survivors", static_cast<double>(stats.surviving_nonzeros)},
              {"distinct_tuples", static_cast<double>(stats.distinct_tuples)},
              {"exact_ms", exact_ms},
              {"sampled_ms", sampled_ms},
              {"draw_ms", draw_ms},
              {"kernel_speedup", speedup},
              {"rel_error", rel_error},
              {"predicted_error", pred}});
  }

  // End-to-end: sketched CP-ALS at the planner's epsilon-derived sample
  // counts vs the exact driver. Final fits are exact-evaluated by the
  // driver, so residual_ratio compares true model quality.
  std::fprintf(out, "\n%10s %10s %10s %10s %10s %12s\n", "epsilon", "S",
               "exact_s", "sampled_s", "speedup", "resid_ratio");
  CpAlsOptions exact_opts;
  exact_opts.rank = kSweepRank;
  exact_opts.max_iterations = 10;
  exact_opts.seed = 7;
  const auto te = std::chrono::steady_clock::now();
  const CpAlsResult exact_als = cp_als(coo, exact_opts);
  const double exact_als_s = ms_since(te) / 1e3;

  for (const double eps : {0.25, 0.1}) {
    CpAlsOptions opts = exact_opts;
    opts.sketch.epsilon = eps;
    opts.sketch.seed = derive_seed(7, 99);
    const index_t s = opts.sketch.resolve_sample_count(kSweepRank);
    const auto ts = std::chrono::steady_clock::now();
    const CpAlsResult sampled_als = cp_als(coo, opts);
    const double sampled_als_s = ms_since(ts) / 1e3;
    const double ratio = (1.0 - sampled_als.final_fit) /
                         std::max(1.0 - exact_als.final_fit, 1e-12);
    std::fprintf(out, "%10.2f %10lld %10.2f %10.2f %9.2fx %12.4f\n", eps,
                 static_cast<long long>(s), exact_als_s, sampled_als_s,
                 exact_als_s / std::max(sampled_als_s, 1e-9), ratio);
    tele.add("SampledCpAls/" + std::string(preset->name) +
                 "/eps:" + std::to_string(eps),
             {{"nnz", static_cast<double>(coo.nnz())},
              {"epsilon", eps},
              {"sample_count", static_cast<double>(s)},
              {"exact_seconds", exact_als_s},
              {"sampled_seconds", sampled_als_s},
              {"als_speedup", exact_als_s / std::max(sampled_als_s, 1e-9)},
              {"exact_fit", exact_als.final_fit},
              {"sampled_fit", sampled_als.final_fit},
              {"residual_ratio", ratio}});
  }
  return tele.flush() ? 0 : 1;
}

}  // namespace

// Custom main: `--sampled` runs the telemetry sweep above; anything else
// falls through to the regular google-benchmark driver. Linking against
// benchmark_main stays safe — its main object is only pulled from the
// static library when no other main is defined (same idiom as
// bench_planner.cpp).
int main(int argc, char** argv) {
  bool sampled = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sampled") == 0) sampled = true;
  }
  if (sampled) {
    mtk_bench::Telemetry tele(argc, argv);
    return run_sampled_sweep(tele);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
