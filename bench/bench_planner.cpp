// Planner validation sweep: for a grid of scenarios (dense / sparse-uniform
// / sparse-skewed tensors, both algorithms, both partition schemes, a
// strong-scaling range of P), run the planner's chosen plan on the
// simulated machine and compare the predicted bottleneck words against the
// measured counters. Under the kBlock scheme the prediction must agree
// within 10% (the per-rank replay is word-exact in practice, so any drift
// marks a planner/simulator divergence); the bench exits nonzero on a
// violation, so it doubles as an assertion harness for CI-style runs.
//
// Also prints the plan's nonzero imbalance columns (max/mean nnz per rank)
// to show what the medium-grained partition buys on skewed inputs, and —
// under --benchmark_format=json / --benchmark_out=FILE — emits the sweep as
// google-benchmark-shaped JSON telemetry (predicted/simulated words and
// messages, error, optimality, imbalance) for the CI perf-trajectory
// artifacts (BENCH_planner.json).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/bench_telemetry.hpp"

#include "src/planner/plan_cache.hpp"
#include "src/planner/planner.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/csf.hpp"

namespace {

using namespace mtk;

int g_failures = 0;

std::vector<Matrix> make_factors(const shape_t& dims, index_t rank,
                                 Rng& rng) {
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_normal(d, rank, rng));
  }
  return factors;
}

void sweep(mtk_bench::Telemetry& tele, const char* label,
           const StoredTensor& x, index_t rank,
           const std::vector<Matrix>& factors,
           double latency_word_ratio = 0.0) {
  std::FILE* out = tele.table();
  std::fprintf(out, "--- %s (%lld stored values) ---\n", label,
               static_cast<long long>(x.stored_values()));
  std::fprintf(out,
               "%-5s %-10s %-12s %-7s %-21s %10s %10s %6s %6s %7s %8s %9s "
               "%8s\n",
               "P", "algo", "grid", "scheme", "collectives", "predicted",
               "simulated", "pmsgs", "smsgs", "err%", "vs-lb", "max-nnz",
               "nnz-imb");
  for (int procs : {4, 8, 16, 32}) {
    PlannerOptions opts;
    opts.procs = procs;
    opts.mode = 0;
    opts.latency_word_ratio = latency_word_ratio;
    const PlanReport report = plan_mttkrp(x, rank, opts);
    const ExecutionPlan& plan = report.best();

    Machine machine(procs);
    const ParMttkrpResult r =
        plan.algo == ParAlgo::kGeneral
            ? par_mttkrp_general(machine, x, factors, 0, plan.grid,
                                 plan.collectives, plan.scheme)
            : par_mttkrp_stationary(machine, x, factors, 0, plan.grid,
                                    plan.collectives, plan.scheme);
    const double simulated = static_cast<double>(r.max_words_moved);
    const double simulated_msgs = static_cast<double>(r.max_messages);
    const double err =
        simulated > 0.0
            ? 100.0 * std::abs(simulated - plan.comm.words) / simulated
            : std::abs(plan.comm.words);
    // Under kBlock the replay is exact, so words must agree within 10%
    // and the message count must match the simulator *exactly* — any
    // drift marks a predictor/dispatcher divergence.
    const bool within =
        std::abs(simulated - plan.comm.words) <=
            0.10 * std::max(simulated, 1.0) &&
        plan.comm.messages == simulated_msgs;
    if (plan.scheme == SparsePartitionScheme::kBlock && !within) {
      ++g_failures;
    }

    std::string grid_str;
    for (std::size_t i = 0; i < plan.grid.size(); ++i) {
      grid_str += (i ? "x" : "") + std::to_string(plan.grid[i]);
    }
    std::fprintf(out,
                 "%-5d %-10s %-12s %-7s %-21s %10.0f %10.0f %6.0f %6.0f "
                 "%6.2f%% %7.2fx",
                 procs, to_string(plan.algo), grid_str.c_str(),
                 plan.scheme == SparsePartitionScheme::kBlock ? "block"
                                                              : "medium",
                 to_string(plan.collectives).c_str(), plan.comm.words,
                 simulated, plan.comm.messages, simulated_msgs, err,
                 plan.optimality_ratio);
    if (!plan.nnz_stats.per_block.empty()) {
      std::fprintf(out, " %9lld %7.2fx",
                   static_cast<long long>(plan.nnz_stats.max_nnz),
                   plan.nnz_stats.imbalance());
    } else {
      std::fprintf(out, " %9s %8s", "-", "-");
    }
    std::fprintf(out, "  %s\n", within ? "ok" : "DIVERGED");

    tele.add(std::string("planner/") + label + "/P:" +
                 std::to_string(procs),
             {{"predicted_words", plan.comm.words},
              {"simulated_words", simulated},
              {"predicted_messages", plan.comm.messages},
              {"simulated_messages", simulated_msgs},
              {"err_pct", err},
              {"optimality_ratio", plan.optimality_ratio},
              {"nnz_imbalance", plan.nnz_stats.per_block.empty()
                                    ? 1.0
                                    : plan.nnz_stats.imbalance()}});
  }
  std::fprintf(out, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  mtk_bench::Telemetry tele(argc, argv);
  std::FILE* out = tele.table();
  Rng rng(20180521);
  const shape_t dims{24, 20, 16};
  const index_t rank = 8;

  const DenseTensor dense = DenseTensor::random_normal(dims, rng);
  const SparseTensor uniform = SparseTensor::random_sparse(dims, 0.03, rng);
  const SparseTensor skewed =
      SparseTensor::random_sparse_skewed(dims, 0.03, 1.5, rng);
  const CsfTensor skewed_csf = CsfTensor::from_coo(skewed);
  const std::vector<Matrix> factors = make_factors(dims, rank, rng);

  std::fprintf(out,
               "=== Planner predicted vs simulated bottleneck words ===\n");
  std::fprintf(out,
               "dims = 24x20x16, R = %lld; the chosen plan runs on the\n"
               "simulated machine; err%% compares the planner's replay to\n"
               "the exact counters (must stay within 10%% under kBlock,\n"
               "messages must match exactly)\n\n",
               static_cast<long long>(rank));

  sweep(tele, "dense", StoredTensor::dense_view(dense), rank, factors);
  sweep(tele, "sparse-uniform-coo", StoredTensor::coo_view(uniform), rank,
        factors);
  sweep(tele, "sparse-skewed-coo", StoredTensor::coo_view(skewed), rank,
        factors);
  sweep(tele, "sparse-skewed-csf", StoredTensor::csf_view(skewed_csf), rank,
        factors);
  // Latency-aware sweep: with alpha/beta > 0 the planner mixes in the
  // recursive schedules where the rounds saved beat any word penalty; the
  // simulator must still match word- and message-exactly.
  sweep(tele, "dense-latency-aware", StoredTensor::dense_view(dense), rank,
        factors, 0.05);
  sweep(tele, "sparse-latency-aware-coo", StoredTensor::coo_view(uniform),
        rank, factors, 0.05);

  // Plan-cache amortization: repeated planning of the same problem.
  PlanCache cache;
  PlannerOptions opts;
  opts.procs = 16;
  for (int i = 0; i < 100; ++i) {
    cache.get_or_plan(StoredTensor::coo_view(skewed), rank, opts);
  }
  std::fprintf(out, "plan cache     : 100 lookups -> %zu planning runs "
               "(%zu hits)\n", cache.misses(), cache.hits());
  tele.add("planner/cache/lookups:100",
           {{"misses", static_cast<double>(cache.misses())},
            {"hits", static_cast<double>(cache.hits())}});

  if (!tele.flush()) return 2;
  if (g_failures > 0) {
    std::fprintf(out, "\n%d kBlock prediction(s) diverged\n", g_failures);
    return 1;
  }
  std::fprintf(out, "\nall kBlock predictions within tolerance\n");
  return 0;
}
