// Wall-clock timings of the four sequential MTTKRP algorithms
// (google-benchmark). The paper's Section VI-A predicts: when R is small
// relative to M, the matmul approach is competitive (it can exploit tuned
// GEMM and moves the same tensor words); the blocked algorithm wins when
// factor-matrix traffic dominates. Absolute numbers are machine-specific;
// the relative ordering across (size, rank) is the informative output.
#include <benchmark/benchmark.h>

#include "src/mttkrp/mttkrp.hpp"
#include "src/support/rng.hpp"

namespace {

using namespace mtk;

struct Fixture {
  DenseTensor x;
  std::vector<Matrix> factors;
};

Fixture make_fixture(index_t dim, int order, index_t rank) {
  Rng rng(4242);
  shape_t dims(static_cast<std::size_t>(order), dim);
  Fixture f;
  f.x = DenseTensor::random_normal(dims, rng);
  for (int k = 0; k < order; ++k) {
    f.factors.push_back(Matrix::random_normal(dim, rank, rng));
  }
  return f;
}

void run_algo(benchmark::State& state, MttkrpAlgo algo, bool parallel) {
  const index_t dim = state.range(0);
  const index_t rank = state.range(1);
  const Fixture f = make_fixture(dim, 3, rank);
  MttkrpOptions opts;
  opts.algo = algo;
  opts.fast_memory_words = index_t{1} << 15;  // ~L1+L2-sized blocks
  opts.parallel = parallel;
  for (auto _ : state) {
    Matrix b = mttkrp(f.x, f.factors, 1, opts);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations() * f.x.size() * rank);
}

void BM_Reference(benchmark::State& state) {
  run_algo(state, MttkrpAlgo::kReference, false);
}
void BM_Blocked(benchmark::State& state) {
  run_algo(state, MttkrpAlgo::kBlocked, false);
}
void BM_BlockedOmp(benchmark::State& state) {
  run_algo(state, MttkrpAlgo::kBlocked, true);
}
void BM_Matmul(benchmark::State& state) {
  run_algo(state, MttkrpAlgo::kMatmul, false);
}
void BM_TwoStep(benchmark::State& state) {
  run_algo(state, MttkrpAlgo::kTwoStep, false);
}

#define MTK_ARGS                                                     \
  ->Args({32, 8})->Args({32, 32})->Args({64, 8})->Args({64, 32})     \
      ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Reference) MTK_ARGS;
BENCHMARK(BM_Blocked) MTK_ARGS;
BENCHMARK(BM_BlockedOmp) MTK_ARGS;
BENCHMARK(BM_Matmul) MTK_ARGS;
BENCHMARK(BM_TwoStep) MTK_ARGS;

// Mode sweep at a fixed size: the two-step algorithm's cost profile depends
// strongly on the mode (it contracts the modes right of n with a GEMM).
void BM_TwoStepMode(benchmark::State& state) {
  const Fixture f = make_fixture(48, 3, 16);
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Matrix b = mttkrp_two_step(f.x, f.factors, mode);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_TwoStepMode)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Order sweep: generic-N blocked kernel across tensor orders.
void BM_BlockedOrder(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  const index_t dim = state.range(1);
  const Fixture f = make_fixture(dim, order, 8);
  MttkrpOptions opts;
  opts.algo = MttkrpAlgo::kBlocked;
  opts.fast_memory_words = index_t{1} << 15;
  for (auto _ : state) {
    Matrix b = mttkrp(f.x, f.factors, 0, opts);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_BlockedOrder)->Args({2, 256})->Args({3, 40})->Args({4, 16})
    ->Args({5, 8})->Unit(benchmark::kMillisecond);

}  // namespace
