// Regenerates Figure 4 of the paper: modeled strong-scaling communication
// comparison for a 3-way cubical tensor with I = 2^45 and R = 2^15, P from
// 2^0 to 2^30. Three series: MTTKRP via matrix multiplication (CARMA cost
// model), Algorithm 3 (Eq. (14), optimal N-way grid), and Algorithm 4
// (Eq. (18), optimal (N+1)-way grid), plus the proved lower bound.
//
// Expected shape (paper, Section VI-B):
//  * tensor-aware algorithms communicate less than matmul throughout;
//  * the matmul curve has a kink near P = 2^15 (1D -> 2D switch);
//  * the gap at P = 2^17 is an order of magnitude (paper: ~25x, this
//    model: ~16x; see EXPERIMENTS.md);
//  * Algorithms 3 and 4 diverge only deep into the scaling range.
#include <cstdio>

#include "src/costmodel/model.hpp"

int main() {
  std::printf("=== Figure 4: modeled strong-scaling communication ===\n");
  std::printf("N = 3, I_k = 2^15 (I = 2^45), R = 2^15, words per processor\n\n");

  mtk::ScalingModelConfig cfg;  // defaults match the paper's configuration
  const auto series = mtk::strong_scaling_series(cfg);
  mtk::print_scaling_table(series);

  // Highlight the paper's headline observations.
  const auto& p17 = series[17];
  std::printf("\nGap at P=2^17 (matmul / Algorithm 3): %.1fx (paper: ~25x)\n",
              p17.matmul_words / p17.stationary_words);
  int diverge = -1;
  for (std::size_t e = 0; e < series.size(); ++e) {
    if (series[e].general_words < series[e].stationary_words * 0.99) {
      diverge = static_cast<int>(e);
      break;
    }
  }
  std::printf("Algorithms 3 and 4 diverge at P = 2^%d (paper: ~2^27)\n",
              diverge);
  return 0;
}
