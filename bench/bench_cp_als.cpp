// CP-ALS end-to-end: (a) sequential decomposition timing and fit with each
// MTTKRP backend; (b) parallel CP-ALS on the simulated machine, with the
// per-iteration communication breakdown (MTTKRP collectives vs Gram
// All-Reduces) across grid shapes — the multi-MTTKRP context of Section VII.
#include <chrono>
#include <cstdio>

#include "src/cp/cp_als.hpp"
#include "src/cp/cp_gradient.hpp"
#include "src/cp/par_cp_als.hpp"
#include "src/support/rng.hpp"

namespace {

using namespace mtk;

DenseTensor synthetic(const shape_t& dims, index_t rank, std::uint64_t seed,
                      double noise) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_uniform(d, rank, rng, 0.1, 1.0));
  }
  DenseTensor x = DenseTensor::from_cp(
      factors, std::vector<double>(static_cast<std::size_t>(rank), 1.0));
  if (noise > 0.0) {
    const double scale =
        noise * x.frobenius_norm() / std::sqrt(static_cast<double>(x.size()));
    for (index_t i = 0; i < x.size(); ++i) x[i] += scale * rng.normal();
  }
  return x;
}

}  // namespace

int main() {
  std::printf("=== CP-ALS end-to-end ===\n\n");

  // (a) Sequential backends.
  const DenseTensor x = synthetic({40, 40, 40}, 8, 911, 0.01);
  std::printf("Sequential: dims = 40^3, true rank 8, 1%% noise, 20 iters\n");
  std::printf("%-12s %10s %12s %8s\n", "backend", "time(ms)", "fit",
              "iters");
  for (MttkrpAlgo algo : {MttkrpAlgo::kBlocked, MttkrpAlgo::kMatmul,
                          MttkrpAlgo::kTwoStep}) {
    CpAlsOptions opts;
    opts.rank = 8;
    opts.max_iterations = 20;
    opts.tolerance = 1e-9;
    opts.mttkrp.algo = algo;
    const auto start = std::chrono::steady_clock::now();
    const CpAlsResult result = cp_als(x, opts);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    std::printf("%-12s %10.1f %12.6f %8d\n", to_string(algo), ms,
                result.final_fit, result.iterations);
  }

  // (a') Gradient-based CP on the same tensor for context (first-order
  // method; uses the dimension-tree all-modes MTTKRP per iteration).
  {
    CpGradOptions gopts;
    gopts.rank = 8;
    gopts.max_iterations = 20;
    gopts.tolerance = 0.0;
    const auto start = std::chrono::steady_clock::now();
    const CpGradResult result = cp_gradient_descent(x, gopts);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    std::printf("%-12s %10.1f %12.6f %8d\n", "gradient", ms,
                result.final_fit, result.iterations);
  }

  // (b) Parallel communication breakdown.
  const DenseTensor xp = synthetic({24, 24, 24}, 6, 913, 0.0);
  std::printf("\nParallel (simulated machine): dims = 24^3, rank 6, "
              "5 iterations\n");
  std::printf("%-10s %16s %16s %12s\n", "grid", "mttkrp words/it",
              "gram words/it", "final fit");
  const std::vector<std::vector<int>> grids{
      {1, 1, 1}, {2, 2, 2}, {4, 2, 2}, {8, 2, 1}, {2, 2, 8}};
  for (const auto& grid : grids) {
    ParCpAlsOptions opts;
    opts.rank = 6;
    opts.max_iterations = 5;
    opts.tolerance = 0.0;
    opts.grid = grid;
    const ParCpAlsResult result = par_cp_als(xp, opts);
    std::printf("%dx%dx%-6d %16lld %16lld %12.6f\n", grid[0], grid[1],
                grid[2],
                static_cast<long long>(result.trace.front().mttkrp_words_max),
                static_cast<long long>(result.trace.front().gram_words_max),
                result.final_fit);
  }
  std::printf("\nReading: the MTTKRP collectives dominate the Gram\n"
              "All-Reduces (R^2 words); balanced grids move fewest words,\n"
              "and the fit is identical across grids (same arithmetic).\n");
  return 0;
}
