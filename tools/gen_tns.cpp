// Synthetic FROSTT-like tensor generator: writes a `.tns` coordinate file
// with configurable dimensions, density, and per-mode index skew, so the
// planner and the scaling benches can sweep realistic sparse scenarios
// without external downloads.
//
// Usage:
//   gen_tns --dims 128,96,64 --density 0.01 --skew 1.0 --seed 7 --out x.tns
//
// skew = 0 draws coordinates uniformly; larger values follow a Zipf-like
// law per mode (index i with probability ~ 1/(i+1)^skew), reproducing the
// hub-dominated slice profile of real datasets. The summary line reports
// the achieved nonzero count and the top-slice concentration per mode so a
// sweep script can verify the skew took effect.
#include <cstdio>
#include <string>

#include "src/mtk.hpp"

namespace {

using namespace mtk;

shape_t parse_dims(const std::string& s) {
  shape_t dims;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    dims.push_back(std::stoll(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return dims;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dims I1,I2,... --out FILE [--density d] [--skew s]\n"
      "          [--seed S]\n"
      "       %s --preset NAME --out FILE [--seed S]\n"
      "  --dims     tensor dimensions, comma separated\n"
      "  --preset   FROSTT-shape preset (",
      argv0, argv0);
  for (std::size_t i = 0; i < frostt_presets().size(); ++i) {
    std::fprintf(stderr, "%s%s", i ? ", " : "", frostt_presets()[i].name);
  }
  std::fprintf(
      stderr,
      "):\n"
      "             scaled-down dims/density/skew mimicking the real shape\n"
      "  --scale    multiply every preset extent by this factor, adjusting\n"
      "             density so nnz scales ~linearly and skew is preserved\n"
      "             (e.g. --preset amazon --scale 0.1); default 1\n"
      "  --out      output .tns path (required)\n"
      "  --density  target nnz / prod(dims), default 0.01\n"
      "  --skew     per-mode Zipf exponent, default 0 (uniform)\n"
      "  --seed     RNG seed, default 1\n");
  return 1;
}

// Fraction of nonzeros in the heaviest slice of `mode`.
double top_slice_share(const SparseTensor& x, int mode) {
  std::vector<index_t> counts(static_cast<std::size_t>(x.dim(mode)), 0);
  for (index_t q = 0; q < x.nnz(); ++q) {
    ++counts[static_cast<std::size_t>(x.index(mode, q))];
  }
  index_t top = 0;
  for (index_t c : counts) top = std::max(top, c);
  return static_cast<double>(top) / static_cast<double>(x.nnz());
}

}  // namespace

int main(int argc, char** argv) {
  shape_t dims;
  std::string out_path;
  double density = 0.01;
  double skew = 0.0;
  double scale = 1.0;
  std::uint64_t seed = 1;

  try {
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      auto next = [&]() -> std::string {
        MTK_CHECK(a + 1 < argc, "missing value after ", arg);
        return argv[++a];
      };
      if (arg == "--dims") {
        dims = parse_dims(next());
      } else if (arg == "--preset") {
        const std::string name = next();
        const FrosttPreset* preset = find_frostt_preset(name);
        MTK_CHECK(preset != nullptr, "unknown preset '", name,
                  "' (see --help for the list)");
        dims = preset->dims;
        density = preset->density;
        skew = preset->skew;
      } else if (arg == "--scale") {
        scale = std::stod(next());
        MTK_CHECK(scale > 0.0, "--scale must be > 0");
      } else if (arg == "--out") {
        out_path = next();
      } else if (arg == "--density") {
        density = std::stod(next());
      } else if (arg == "--skew") {
        skew = std::stod(next());
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        return usage(argv[0]);
      }
    }
    if (dims.empty() || out_path.empty()) return usage(argv[0]);
    if (scale != 1.0) {
      // Works for presets and explicit --dims alike: wrap the current
      // shape/density/skew in a throwaway preset and rescale it.
      const FrosttPreset rescaled =
          scale_frostt_preset({"cli", dims, density, skew}, scale);
      dims = rescaled.dims;
      density = rescaled.density;
    }

    Rng rng(seed);
    const SparseTensor x =
        skew == 0.0 ? SparseTensor::random_sparse(dims, density, rng)
                    : SparseTensor::random_sparse_skewed(dims, density, skew,
                                                         rng);
    save_tensor_tns(x, out_path);

    std::printf("saved          : %s\n", out_path.c_str());
    std::printf("dims           :");
    for (index_t d : dims) std::printf(" %lld", static_cast<long long>(d));
    std::printf("\n");
    std::printf("nonzeros       : %lld (density %.6f, skew %.2f)\n",
                static_cast<long long>(x.nnz()),
                static_cast<double>(x.nnz()) /
                    static_cast<double>(shape_size(dims)),
                skew);
    std::printf("top slice      :");
    for (int k = 0; k < x.order(); ++k) {
      std::printf(" %.1f%%", 100.0 * top_slice_share(x, k));
    }
    std::printf(" of nnz per mode\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
