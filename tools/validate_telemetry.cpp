// Telemetry artifact validator: one home for the structural checks CI used
// to run as inline python. Validates three artifact families the repo
// emits, all through src/support/json:
//
//   --bench FILE     google-benchmark JSON (BENCH_*.json): a non-empty
//                    "benchmarks" array, plus the per-suite invariants the
//                    perf trajectory tracks (keyed off the file's basename):
//                      BENCH_par_scaling  transport rows are bit-exact
//                                         against the simulator and report
//                                         positive measured comm seconds
//                      BENCH_kernels      BM_AllModesFused reuses multiplies
//                                         (> 1x) with zero CSF rebuilds
//                      BENCH_sampled      >= 3 kernel + >= 2 CP-ALS rows
//                                         with sane counters
//                      BENCH_serve        per-row latency percentiles are
//                                         ordered (p50 <= p95 <= p99) with
//                                         positive throughput, and the
//                                         post-warmup plan-cache hit rate
//                                         reaches > 0.9 on some row
//   --metrics FILE   metrics snapshots (mttkrp_cli --metrics-json): context
//                    kind mtk-metrics-v1 and well-formed counter / gauge /
//                    histogram rows
//   --trace FILE     Chrome trace-event JSON (mttkrp_cli --trace-out):
//                    a traceEvents array whose "X" events carry the
//                    required keys with monotonically nondecreasing
//                    timestamps
//
//   --require-categories a,b,c   these span categories must appear across
//                                the given traces
//   --require-ranks N            at least N distinct rank tracks (tid >= 1)
//                                must appear across the given traces
//
// Exits 0 with one "ok" line per file, or 1 with a diagnostic.
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/support/check.hpp"
#include "src/support/json.hpp"

namespace {

using mtk::JsonValue;

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    if (next > pos) out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

double field(const JsonValue& row, const char* key) {
  const JsonValue* v = row.find(key);
  MTK_REQUIRE(v != nullptr && v->is_number(), "missing numeric field '", key,
              "' in benchmark row");
  return v->as_number();
}

// The google-benchmark-shaped suites: generic shape first, then the
// per-suite invariants (mirrors what .github/workflows/ci.yml asserted
// inline before this tool existed).
void validate_bench(const std::string& path) {
  const JsonValue doc = JsonValue::parse_file(path);
  const JsonValue* rows = doc.find("benchmarks");
  MTK_REQUIRE(rows != nullptr && rows->is_array(),
              path, ": no \"benchmarks\" array");
  MTK_REQUIRE(!rows->items().empty(), path, ": empty benchmark telemetry");
  for (const JsonValue& row : rows->items()) {
    MTK_REQUIRE(row.is_object() && row.has("name") &&
                    row.at("name").is_string(),
                path, ": benchmark row without a string \"name\"");
  }

  const std::string base = basename_of(path);
  if (starts_with(base, "BENCH_par_scaling")) {
    int transport_rows = 0;
    for (const JsonValue& row : rows->items()) {
      if (!starts_with(row.at("name").as_string(), "par_scaling/transport/")) {
        continue;
      }
      ++transport_rows;
      MTK_REQUIRE(field(row, "bitexact") == 1.0, path, ": ",
                  row.at("name").as_string(),
                  " is not bit-exact against the simulator");
      MTK_REQUIRE(field(row, "measured_comm_s") > 0.0, path, ": ",
                  row.at("name").as_string(), " has no measured comm time");
    }
    MTK_REQUIRE(transport_rows > 0, path, ": no transport rows");
    std::printf("%s: %d transport rows bit-exact ok\n", path.c_str(),
                transport_rows);
  } else if (starts_with(base, "BENCH_kernels")) {
    const JsonValue* fused = nullptr;
    for (const JsonValue& row : rows->items()) {
      if (row.at("name").as_string() == "BM_AllModesFused") fused = &row;
    }
    MTK_REQUIRE(fused != nullptr, path, ": no BM_AllModesFused row");
    MTK_REQUIRE(field(*fused, "reuse_factor") > 1.0, path,
                ": BM_AllModesFused reuse_factor <= 1");
    MTK_REQUIRE(field(*fused, "csf_rebuilds_per_iter") == 0.0, path,
                ": BM_AllModesFused performed CSF rebuilds");
    std::printf("%s: BM_AllModesFused reuse %.2fx, 0 rebuilds ok\n",
                path.c_str(), field(*fused, "reuse_factor"));
  } else if (starts_with(base, "BENCH_sampled")) {
    int kernels = 0, als = 0;
    for (const JsonValue& row : rows->items()) {
      const std::string& name = row.at("name").as_string();
      if (starts_with(name, "SampledMttkrp/")) {
        ++kernels;
        MTK_REQUIRE(field(row, "sampled_ms") > 0.0 &&
                        field(row, "exact_ms") > 0.0,
                    path, ": ", name, " has non-positive timings");
        MTK_REQUIRE(field(row, "survivors") <= field(row, "nnz"), path, ": ",
                    name, " visits more nonzeros than exist");
      } else if (starts_with(name, "SampledCpAls/")) {
        ++als;
        const double ratio = field(row, "residual_ratio");
        MTK_REQUIRE(ratio > 0.0 && ratio < 2.0, path, ": ", name,
                    " residual ratio ", ratio, " out of range");
      }
    }
    MTK_REQUIRE(kernels >= 3 && als >= 2, path, ": expected >= 3 kernel and "
                ">= 2 cp-als rows, got ", kernels, " + ", als);
    std::printf("%s: %d kernel + %d cp-als rows ok\n", path.c_str(), kernels,
                als);
  } else if (starts_with(base, "BENCH_serve")) {
    int serve_rows = 0;
    double best_hit_rate = 0.0;
    for (const JsonValue& row : rows->items()) {
      const std::string& name = row.at("name").as_string();
      if (!starts_with(name, "serve/")) continue;
      ++serve_rows;
      MTK_REQUIRE(field(row, "requests") > 0.0, path, ": ", name,
                  " served no requests");
      MTK_REQUIRE(field(row, "throughput_rps") > 0.0, path, ": ", name,
                  " has non-positive throughput");
      const double p50 = field(row, "p50_us");
      const double p95 = field(row, "p95_us");
      const double p99 = field(row, "p99_us");
      MTK_REQUIRE(p50 > 0.0 && p50 <= p95 && p95 <= p99, path, ": ", name,
                  " latency percentiles are not ordered (p50 ", p50,
                  ", p95 ", p95, ", p99 ", p99, ")");
      const double hit_rate = field(row, "plan_hit_rate");
      MTK_REQUIRE(hit_rate >= 0.0 && hit_rate <= 1.0, path, ": ", name,
                  " plan_hit_rate ", hit_rate, " out of [0, 1]");
      if (hit_rate > best_hit_rate) best_hit_rate = hit_rate;
    }
    MTK_REQUIRE(serve_rows >= 4, path, ": expected >= 4 serve rows, got ",
                serve_rows);
    MTK_REQUIRE(best_hit_rate > 0.9, path,
                ": no serve row reaches a post-warmup plan-cache hit rate "
                "> 0.9 (best ", best_hit_rate, ")");
    std::printf("%s: %d serve rows, best hit rate %.3f ok\n", path.c_str(),
                serve_rows, best_hit_rate);
  } else {
    std::printf("%s: %zu rows ok\n", path.c_str(), rows->items().size());
  }
}

// Metrics snapshots share the benchmark-array shape; every row must be a
// well-formed instrument of a known kind. Instrument names seen across all
// snapshots accumulate into `seen` for --require-metrics.
void validate_metrics(const std::string& path, std::set<std::string>& seen) {
  const JsonValue doc = JsonValue::parse_file(path);
  const JsonValue* ctx = doc.find("context");
  MTK_REQUIRE(ctx != nullptr && ctx->is_object() && ctx->has("kind") &&
                  ctx->at("kind").as_string() == "mtk-metrics-v1",
              path, ": context.kind is not mtk-metrics-v1");
  const JsonValue* rows = doc.find("benchmarks");
  MTK_REQUIRE(rows != nullptr && rows->is_array(),
              path, ": no \"benchmarks\" array");
  for (const JsonValue& row : rows->items()) {
    MTK_REQUIRE(row.is_object() && row.has("name") &&
                    row.at("name").is_string() && row.has("run_type"),
                path, ": malformed metrics row");
    const std::string& name = row.at("name").as_string();
    seen.insert(name);
    const std::string& kind = row.at("run_type").as_string();
    if (kind == "counter") {
      MTK_REQUIRE(row.has("value") && row.at("value").is_integer(), path,
                  ": counter ", name, " without an integer value");
    } else if (kind == "gauge") {
      MTK_REQUIRE(row.has("value") && row.at("value").is_number(), path,
                  ": gauge ", name, " without a numeric value");
    } else if (kind == "histogram") {
      for (const char* key : {"count", "sum", "min", "max"}) {
        MTK_REQUIRE(row.has(key) && row.at(key).is_integer(), path,
                    ": histogram ", name, " without an integer ", key);
      }
    } else {
      MTK_REQUIRE(false, path, ": unknown run_type '", kind, "' on ", name);
    }
  }
  std::printf("%s: %zu instruments ok\n", path.c_str(),
              rows->items().size());
}

struct TraceSummary {
  std::set<std::string> categories;
  std::set<std::int64_t> rank_tracks;  // tid >= 1 (tid 0 = orchestrator)
};

void validate_trace(const std::string& path, TraceSummary* summary) {
  const JsonValue doc = JsonValue::parse_file(path);
  const JsonValue* events = doc.find("traceEvents");
  MTK_REQUIRE(events != nullptr && events->is_array(),
              path, ": no \"traceEvents\" array");
  double last_ts = -1.0;
  std::size_t spans = 0;
  for (const JsonValue& ev : events->items()) {
    MTK_REQUIRE(ev.is_object() && ev.has("ph"), path,
                ": trace event without a phase");
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") continue;  // thread_name metadata
    MTK_REQUIRE(ph == "X", path, ": unexpected event phase '", ph, "'");
    for (const char* key : {"name", "cat"}) {
      MTK_REQUIRE(ev.has(key) && ev.at(key).is_string(), path,
                  ": X event without a string '", key, "'");
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      MTK_REQUIRE(ev.has(key) && ev.at(key).is_number(), path,
                  ": X event without a numeric '", key, "'");
    }
    const double ts = ev.at("ts").as_number();
    MTK_REQUIRE(ts >= last_ts, path,
                ": timestamps are not monotonically nondecreasing");
    last_ts = ts;
    MTK_REQUIRE(ev.at("dur").as_number() >= 0.0, path,
                ": negative span duration");
    ++spans;
    summary->categories.insert(ev.at("cat").as_string());
    const std::int64_t tid = ev.at("tid").as_integer();
    if (tid >= 1) summary->rank_tracks.insert(tid);
  }
  MTK_REQUIRE(spans > 0, path, ": no spans recorded");
  std::printf("%s: %zu spans, %zu categories, %zu rank tracks ok\n",
              path.c_str(), spans, summary->categories.size(),
              summary->rank_tracks.size());
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--bench FILE]... [--metrics FILE]...\n"
               "          [--trace FILE]... [--require-categories a,b,c]\n"
               "          [--require-ranks N] [--require-metrics a,b,c]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> bench, metrics, traces;
  std::vector<std::string> required_categories;
  std::vector<std::string> required_metrics;
  int required_ranks = 0;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> std::string {
      MTK_CHECK(a + 1 < argc, "missing value after ", arg);
      return argv[++a];
    };
    try {
      if (arg == "--bench") {
        bench.push_back(next());
      } else if (arg == "--metrics") {
        metrics.push_back(next());
      } else if (arg == "--trace") {
        traces.push_back(next());
      } else if (arg == "--require-categories") {
        required_categories = split_commas(next());
      } else if (arg == "--require-ranks") {
        required_ranks = std::stoi(next());
      } else if (arg == "--require-metrics") {
        required_metrics = split_commas(next());
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (bench.empty() && metrics.empty() && traces.empty()) {
    return usage(argv[0]);
  }

  try {
    for (const std::string& path : bench) validate_bench(path);
    std::set<std::string> metric_names;
    for (const std::string& path : metrics) {
      validate_metrics(path, metric_names);
    }
    for (const std::string& name : required_metrics) {
      MTK_REQUIRE(metric_names.count(name) > 0, "required instrument '",
                  name, "' absent from the given metrics snapshots");
    }
    TraceSummary summary;
    for (const std::string& path : traces) validate_trace(path, &summary);
    for (const std::string& cat : required_categories) {
      MTK_REQUIRE(summary.categories.count(cat) > 0,
                  "required span category '", cat,
                  "' absent from the given traces");
    }
    MTK_REQUIRE(static_cast<int>(summary.rank_tracks.size()) >=
                    required_ranks,
                "traces cover ", summary.rank_tracks.size(),
                " rank tracks, need ", required_ranks);
    if (required_ranks > 0 || !required_categories.empty()) {
      std::printf("trace requirements satisfied (%zu categories, "
                  "%zu rank tracks)\n",
                  summary.categories.size(), summary.rank_tracks.size());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
