// chaos_serve: the chaos harness for the fault-injection stack
// (docs/serving.md, "Chaos runbook"). Replays a scripted fault schedule
// against the transport and serving layers and asserts the robustness
// contract:
//
//   every request/collective either completes BIT-EXACTLY equal to a
//   fault-free golden run, or surfaces a typed error (timeout | corruption
//   | aborted | deadline_exceeded | rejected | bad_request) within its
//   deadline — zero hangs, zero crashes, nothing silently wrong.
//
// Phases:
//   1. transport chaos — par_mttkrp_stationary through a
//      FaultInjectingTransport over real std::thread ranks and over the
//      centralized simulator, under message delay / drop / corruption and
//      rank stalls, with a collective deadline converting drops into typed
//      timeouts. Results are checksum-compared against the golden run.
//   2. serve chaos — the scripted mixed workload (mttkrp floods, delta
//      appends, warm refinement) against MttkrpServer with the injector's
//      transient attempt failures: every answer must be bit-equal to the
//      golden answer (retries converge because injected transient faults
//      clear after two attempts).
//   3. deadline — injected persistent failures + a short deadline: every
//      answer must be a typed deadline_exceeded error.
//   4. shedding — an over-budget exact request degrades to the sampled
//      backend and says so (degraded=true) instead of being rejected.
//   5. eviction — a registry memory budget evicts the cold tensor; the
//      evicted name answers a typed bad_request, the resident one serves.
//
// Exits 0 when every phase holds, 1 with a per-violation listing otherwise.
// CI runs this under a hard `timeout` so a hang fails loudly.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/parsim/transport/fault.hpp"
#include "src/parsim/transport/thread_transport.hpp"
#include "src/parsim/transport/transport.hpp"
#include "src/serve/server.hpp"
#include "src/support/check.hpp"
#include "src/support/json.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/matrix.hpp"
#include "src/tensor/sparse_tensor.hpp"

namespace {

using namespace mtk;

int violations = 0;

void violation(const char* phase, const std::string& what) {
  ++violations;
  std::fprintf(stderr, "VIOLATION [%s] %s\n", phase, what.c_str());
}

std::int64_t counter_value(const char* name) {
  return MetricsRegistry::global().counter(name).value();
}

std::uint64_t matrix_checksum(const Matrix& m) {
  return wire_checksum(m.data(),
                       static_cast<std::size_t>(m.rows()) *
                           static_cast<std::size_t>(m.cols()));
}

// ---------------------------------------------------------------------------
// Phase 1: transport chaos.

struct TransportTally {
  int exact = 0;
  int typed = 0;
};

void run_transport_trials(const char* phase, bool threads,
                          const FaultSchedule& base, int trials,
                          const StoredTensor& x,
                          const std::vector<Matrix>& factors,
                          const std::vector<int>& grid,
                          const std::vector<std::uint64_t>& golden,
                          TransportTally& tally) {
  for (int trial = 0; trial < trials; ++trial) {
    FaultSchedule sched = base;
    sched.seed = derive_seed(base.seed, static_cast<std::uint64_t>(trial));
    auto injector = std::make_shared<const FaultInjector>(sched);
    std::unique_ptr<Transport> inner;
    if (threads) {
      inner = std::make_unique<ThreadTransport>(4);
    } else {
      inner = std::make_unique<SimTransport>(4);
    }
    FaultInjectingTransport transport(std::move(inner), injector);
    transport.set_deadline(1.0);

    const int mode = trial % x.order();
    const CollectiveKind kind =
        trial % 2 == 0 ? CollectiveKind::kBucket : CollectiveKind::kRecursive;
    // Golden is per (mode, kind): the two collective schedules have
    // different (both correct) floating-point accumulation orders.
    const std::size_t golden_idx =
        static_cast<std::size_t>(mode) * 2 +
        (kind == CollectiveKind::kRecursive ? 1 : 0);
    const auto t0 = std::chrono::steady_clock::now();
    try {
      ParMttkrpResult r =
          par_mttkrp_stationary(transport, x, factors, mode, grid, kind);
      if (matrix_checksum(r.b) != golden[golden_idx]) {
        violation(phase, "trial " + std::to_string(trial) +
                             ": completed but result differs from the "
                             "fault-free golden run (silent corruption)");
      } else {
        ++tally.exact;
      }
    } catch (const TransportError& e) {
      ++tally.typed;  // typed, deadline-bounded degradation: the contract
    } catch (const std::exception& e) {
      violation(phase, "trial " + std::to_string(trial) +
                           ": untyped exception: " + e.what());
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Generous hang proxy: deadline + injected sleeps + scheduling slack.
    if (elapsed > 30.0) {
      violation(phase, "trial " + std::to_string(trial) + " took " +
                           std::to_string(elapsed) + "s (hang)");
    }
  }
}

// ---------------------------------------------------------------------------
// Phases 2-5: serve chaos.

// One deterministic mixed workload; concurrent inside each read-only stage,
// with appends/refines as sequential barriers so golden and chaos runs
// observe identical tensor versions per request id.
std::map<std::int64_t, JsonValue> run_workload(MttkrpServer& server) {
  std::map<std::int64_t, JsonValue> answers;
  const auto drain = [&](std::vector<std::future<std::string>>& futs) {
    for (auto& f : futs) {
      const JsonValue v = JsonValue::parse(f.get());
      answers[v.at("id").as_integer()] = v;
    }
    futs.clear();
  };

  std::vector<std::future<std::string>> futs;
  char buf[192];
  for (int id = 1; id <= 8; ++id) {
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%d,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":8,"
                  "\"mode\":%d,\"seed\":%d}",
                  id, id % 3, 100 + id);
    futs.push_back(server.submit(buf));
  }
  drain(futs);

  answers[20] = JsonValue::parse(server.handle(
      "{\"id\":20,\"op\":\"append\",\"tensor\":\"t\","
      "\"entries\":[[0,0,0,0.5],[17,15,13,-1.0],[3,4,5,0.25]]}"));

  for (int id = 21; id <= 26; ++id) {
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%d,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":8,"
                  "\"mode\":%d,\"seed\":%d}",
                  id, id % 3, 200 + id);
    futs.push_back(server.submit(buf));
  }
  drain(futs);

  answers[30] = JsonValue::parse(server.handle(
      "{\"id\":30,\"op\":\"refine\",\"tensor\":\"t\",\"rank\":4,"
      "\"iters\":2,\"seed\":5}"));
  return answers;
}

bool answer_ok(const JsonValue& v) { return v.at("ok").as_bool(); }

std::string answer_kind(const JsonValue& v) {
  const JsonValue* k = v.find("kind");
  return k == nullptr ? std::string("(untyped)") : k->as_string();
}

ServeOptions base_serve_options() {
  ServeOptions opts;
  opts.workers = 2;
  opts.batch_window = 4;
  return opts;
}

SparseTensor serve_tensor(std::uint64_t seed) {
  Rng rng(seed);
  return SparseTensor::random_sparse({18, 16, 14}, 0.06, rng);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string chaos_arg =
        "seed=1 delay=0.15:200 drop=0.04 corrupt=0.04 stall=1@2:400 "
        "fail=0.35";
    int trials = 12;
    std::uint64_t seed = 7;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        MTK_CHECK(i + 1 < argc, "missing value for ", arg);
        return argv[++i];
      };
      if (arg == "--chaos") {
        chaos_arg = next();
      } else if (arg == "--trials") {
        trials = std::stoi(next());
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--help" || arg == "-h") {
        std::fprintf(
            stdout,
            "usage: chaos_serve [--chaos SCHEDULE] [--trials N] [--seed S]\n"
            "\n"
            "  Chaos harness: replays the fault schedule against the\n"
            "  transport and serving stacks and asserts every operation\n"
            "  completes bit-exactly or fails with a typed error within its\n"
            "  deadline (docs/serving.md, \"Chaos runbook\").\n"
            "\n"
            "  --chaos   fault schedule script or @FILE (default: delays,\n"
            "            drops, corruption, stalls, transient failures)\n"
            "  --trials  faulted transport runs per backend (default 12)\n"
            "  --seed    synthetic tensor seed (default 7)\n");
        return 0;
      } else {
        std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
        return 2;
      }
    }

    const FaultSchedule schedule = parse_fault_schedule_arg(chaos_arg);
    std::fprintf(stderr, "chaos schedule : %s\n",
                 schedule.describe().c_str());

    // --- Phase 1: transport chaos ---------------------------------------
    Rng rng(seed);
    SparseTensor coo = SparseTensor::random_sparse({18, 16, 14}, 0.08, rng);
    StoredTensor x = StoredTensor::coo_view(coo);
    std::vector<Matrix> factors;
    {
      Rng frng(99);
      for (index_t d : coo.dims()) {
        factors.push_back(Matrix::random_normal(d, 8, frng));
      }
    }
    const std::vector<int> grid{2, 2, 1};

    std::vector<std::uint64_t> golden;
    for (int mode = 0; mode < coo.order(); ++mode) {
      for (CollectiveKind kind :
           {CollectiveKind::kBucket, CollectiveKind::kRecursive}) {
        ThreadTransport tt(4);
        ParMttkrpResult r =
            par_mttkrp_stationary(tt, x, factors, mode, grid, kind);
        golden.push_back(matrix_checksum(r.b));
      }
    }

    TransportTally threads_tally, sim_tally;
    run_transport_trials("transport/threads", /*threads=*/true, schedule,
                         trials, x, factors, grid, golden, threads_tally);
    run_transport_trials("transport/sim", /*threads=*/false, schedule, trials,
                         x, factors, grid, golden, sim_tally);
    std::fprintf(stderr,
                 "transport      : threads %d exact + %d typed, "
                 "sim %d exact + %d typed (of %d each)\n",
                 threads_tally.exact, threads_tally.typed, sim_tally.exact,
                 sim_tally.typed, trials);
    if (threads_tally.exact + threads_tally.typed > 0 &&
        threads_tally.typed == 0 && schedule.drop_prob > 0.02) {
      std::fprintf(stderr,
                   "note           : no transport faults fired this seed\n");
    }

    // --- Phase 2: serve chaos vs golden ---------------------------------
    std::map<std::int64_t, JsonValue> golden_answers;
    {
      MttkrpServer server(base_serve_options());
      server.registry().load("t", serve_tensor(seed), StorageFormat::kCsf);
      golden_answers = run_workload(server);
    }
    for (const auto& [id, v] : golden_answers) {
      if (!answer_ok(v)) {
        violation("serve/golden", "id " + std::to_string(id) +
                                      " failed fault-free: " +
                                      answer_kind(v));
      }
    }

    const std::int64_t retries0 = counter_value("mtk.serve.retries");
    const std::int64_t injected0 = counter_value("mtk.fault.failures");
    {
      ServeOptions opts = base_serve_options();
      opts.chaos = std::make_shared<const FaultInjector>(schedule);
      opts.default_deadline_ms = 20000.0;
      opts.max_retries = 3;
      opts.retry_backoff_ms = 0.5;
      MttkrpServer server(opts);
      server.registry().load("t", serve_tensor(seed), StorageFormat::kCsf);
      std::map<std::int64_t, JsonValue> chaos_answers = run_workload(server);

      for (const auto& [id, g] : golden_answers) {
        auto it = chaos_answers.find(id);
        if (it == chaos_answers.end()) {
          violation("serve/chaos", "id " + std::to_string(id) + " never "
                                   "answered (hang)");
          continue;
        }
        const JsonValue& c = it->second;
        if (!answer_ok(c)) {
          // Injected transient faults clear within the retry budget, so
          // under this phase's long deadline every answer must converge.
          violation("serve/chaos", "id " + std::to_string(id) +
                                       " failed under chaos (" +
                                       answer_kind(c) + ") despite retries");
          continue;
        }
        for (const char* field : {"norm", "fit"}) {
          const JsonValue* gv = g.find(field);
          const JsonValue* cv = c.find(field);
          if ((gv == nullptr) != (cv == nullptr)) {
            violation("serve/chaos", "id " + std::to_string(id) + " answer "
                                     "shape differs from golden");
          } else if (gv != nullptr &&
                     gv->as_number() != cv->as_number()) {
            violation("serve/chaos",
                      "id " + std::to_string(id) + " " + field +
                          " differs from golden (silent corruption)");
          }
        }
      }
    }
    std::fprintf(stderr,
                 "serve chaos    : %zu answers bit-checked, %lld injected "
                 "failures, %lld retries\n",
                 golden_answers.size(),
                 static_cast<long long>(counter_value("mtk.fault.failures") -
                                        injected0),
                 static_cast<long long>(counter_value("mtk.serve.retries") -
                                        retries0));
    if (schedule.fail_prob >= 0.2 &&
        counter_value("mtk.fault.failures") == injected0) {
      violation("serve/chaos",
                "fail_prob >= 0.2 but no transient failure was injected");
    }

    // --- Phase 3: deadlines ----------------------------------------------
    const std::int64_t deadlines0 = counter_value("mtk.serve.deadline_exceeded");
    {
      ServeOptions opts = base_serve_options();
      opts.chaos = std::make_shared<const FaultInjector>(
          FaultSchedule::parse("seed=3 fail=1"));
      opts.default_deadline_ms = 5.0;
      opts.max_retries = 5;
      opts.retry_backoff_ms = 10.0;  // first backoff always outlives 5ms
      MttkrpServer server(opts);
      server.registry().load("t", serve_tensor(seed), StorageFormat::kCsf);
      for (int id = 1; id <= 3; ++id) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "{\"id\":%d,\"op\":\"mttkrp\",\"tensor\":\"t\","
                      "\"rank\":8,\"mode\":0,\"seed\":%d}",
                      id, id);
        const JsonValue v = JsonValue::parse(server.handle(buf));
        if (answer_ok(v) || answer_kind(v) != "deadline_exceeded") {
          violation("serve/deadline",
                    "id " + std::to_string(id) + " expected a typed "
                    "deadline_exceeded answer, got " +
                        (answer_ok(v) ? "ok" : answer_kind(v)));
        }
      }
    }
    if (counter_value("mtk.serve.deadline_exceeded") - deadlines0 < 3) {
      violation("serve/deadline",
                "mtk.serve.deadline_exceeded did not count the misses");
    }

    // --- Phase 4: overload shedding --------------------------------------
    const std::int64_t shed0 = counter_value("mtk.serve.shed");
    {
      ServeOptions opts = base_serve_options();
      opts.admit_max_cost = 1e-12;  // everything is over budget
      opts.shed_epsilon = 0.25;
      MttkrpServer server(opts);
      server.registry().load("t", serve_tensor(seed), StorageFormat::kCsf);
      const JsonValue v = JsonValue::parse(server.handle(
          "{\"id\":1,\"op\":\"mttkrp\",\"tensor\":\"t\",\"rank\":8,"
          "\"mode\":0,\"seed\":1}"));
      const JsonValue* degraded = v.find("degraded");
      if (!answer_ok(v) || degraded == nullptr || !degraded->as_bool() ||
          v.at("path").as_string() != "sampled") {
        violation("serve/shed",
                  "over-budget exact request did not degrade to the sampled "
                  "backend: " + (answer_ok(v) ? v.at("path").as_string()
                                              : answer_kind(v)));
      }
      // Refinement is not shed-eligible: still a typed rejection.
      const JsonValue r = JsonValue::parse(server.handle(
          "{\"id\":2,\"op\":\"refine\",\"tensor\":\"t\",\"rank\":4,"
          "\"iters\":1}"));
      if (answer_ok(r) || answer_kind(r) != "rejected") {
        violation("serve/shed", "over-budget refine should stay rejected");
      }
    }
    if (counter_value("mtk.serve.shed") - shed0 < 1) {
      violation("serve/shed", "mtk.serve.shed did not count the degradation");
    }

    // --- Phase 5: registry eviction --------------------------------------
    const std::int64_t evictions0 = counter_value("mtk.serve.evictions");
    {
      ServeOptions opts = base_serve_options();
      MttkrpServer server(opts);
      auto va = server.registry().load("a", serve_tensor(seed),
                                       StorageFormat::kCsf);
      // Budget holds exactly one of the two tensors: loading "b" evicts the
      // colder "a".
      server.registry().set_max_resident_bytes(va->resident_bytes() +
                                               va->resident_bytes() / 2);
      server.registry().load("b", serve_tensor(seed + 1),
                             StorageFormat::kCsf);
      const JsonValue ve = JsonValue::parse(server.handle(
          "{\"id\":1,\"op\":\"mttkrp\",\"tensor\":\"a\",\"rank\":8,"
          "\"mode\":0,\"seed\":1}"));
      if (answer_ok(ve) || answer_kind(ve) != "bad_request") {
        violation("serve/evict",
                  "evicted tensor should answer a typed bad_request");
      }
      const JsonValue vb = JsonValue::parse(server.handle(
          "{\"id\":2,\"op\":\"mttkrp\",\"tensor\":\"b\",\"rank\":8,"
          "\"mode\":0,\"seed\":1}"));
      if (!answer_ok(vb)) {
        violation("serve/evict", "resident tensor failed to serve: " +
                                     answer_kind(vb));
      }
    }
    if (counter_value("mtk.serve.evictions") - evictions0 < 1) {
      violation("serve/evict", "budget pressure produced no eviction");
    }

    std::fprintf(stderr,
                 "fault counters : delays=%lld drops=%lld corruptions=%lld "
                 "stalls=%lld failures=%lld timeouts=%lld\n",
                 static_cast<long long>(counter_value("mtk.fault.delays")),
                 static_cast<long long>(counter_value("mtk.fault.drops")),
                 static_cast<long long>(
                     counter_value("mtk.fault.corruptions")),
                 static_cast<long long>(counter_value("mtk.fault.stalls")),
                 static_cast<long long>(counter_value("mtk.fault.failures")),
                 static_cast<long long>(
                     counter_value("mtk.transport.timeouts")));
    if (violations == 0) {
      std::fprintf(stderr, "chaos          : PASS (zero hangs, zero crashes, "
                           "zero silent corruption)\n");
      return 0;
    }
    std::fprintf(stderr, "chaos          : FAIL (%d violations)\n",
                 violations);
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
