// Doc-lint: keeps the docs from drifting away from the code. Three checks,
// all pure-stdlib so CI can build and run this target without the library:
//
//   flags    every `--flag` literal parsed by a tool in tools/*.cpp must
//            appear in docs/cli.md (the complete flag reference)
//   metrics  every quoted `mtk.*` instrument name in src/ must appear in
//            docs/metrics.md (the stable-name table)
//   links    every intra-repo markdown link in the root *.md files and
//            docs/*.md must resolve to an existing file
//
// Exits 0 with a one-line summary per check, or 1 listing every violation.
// Run from CI as:  check_docs --repo-root <checkout>
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.string().c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool flag_char(char c) {
  return std::islower(static_cast<unsigned char>(c)) != 0 ||
         std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-';
}

// Collects `--flag` tokens from C++ source text. Only tokens that start a
// lowercase word after the dashes count, which skips decrement operators,
// comment rules (`// ---`), and table separators.
std::set<std::string> collect_flags(const std::string& text) {
  std::set<std::string> flags;
  for (std::size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] != '-' || text[i + 1] != '-') continue;
    if (i > 0 && (flag_char(text[i - 1]) || text[i - 1] == '-')) continue;
    if (std::islower(static_cast<unsigned char>(text[i + 2])) == 0) continue;
    std::size_t end = i + 2;
    while (end < text.size() && flag_char(text[end])) ++end;
    std::string flag = text.substr(i, end - i);
    while (!flag.empty() && flag.back() == '-') flag.pop_back();
    if (flag.size() > 2) flags.insert(flag);
    i = end - 1;
  }
  return flags;
}

// Collects quoted "mtk.*" instrument names: a dotted lowercase path right
// after an opening double quote, with at least one dot past the prefix.
std::set<std::string> collect_metric_names(const std::string& text) {
  std::set<std::string> names;
  const std::string prefix = "\"mtk.";
  std::size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    std::size_t end = pos + 1;
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) != 0 ||
            std::isdigit(static_cast<unsigned char>(text[end])) != 0 ||
            text[end] == '.' || text[end] == '_')) {
      ++end;
    }
    if (end < text.size() && text[end] == '"') {
      const std::string name = text.substr(pos + 1, end - pos - 1);
      if (name.find('.', 4) != std::string::npos) names.insert(name);
    }
    pos = end;
  }
  return names;
}

// True when `needle` appears in `haystack` with non-word characters (or
// string edges) on both sides, so `--trace` does not satisfy `--trace-out`.
bool contains_token(const std::string& haystack, const std::string& needle) {
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !flag_char(haystack[pos - 1]);
    const std::size_t after = pos + needle.size();
    const bool right_ok =
        after >= haystack.size() ||
        (!flag_char(haystack[after]) && haystack[after] != '_' &&
         haystack[after] != '.');
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

std::vector<fs::path> sorted_files(const fs::path& dir,
                                   const std::string& ext,
                                   bool recursive) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  if (recursive) {
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (e.is_regular_file() && e.path().extension() == ext) {
        out.push_back(e.path());
      }
    }
  } else {
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.is_regular_file() && e.path().extension() == ext) {
        out.push_back(e.path());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int check_flags(const fs::path& root, int* violations) {
  const std::string cli_md = read_file(root / "docs" / "cli.md");
  int checked = 0;
  for (const fs::path& tool : sorted_files(root / "tools", ".cpp", false)) {
    if (tool.filename() == "check_docs.cpp") continue;  // lints, not a CLI
    const std::set<std::string> flags = collect_flags(read_file(tool));
    for (const std::string& flag : flags) {
      ++checked;
      if (!contains_token(cli_md, flag)) {
        std::fprintf(stderr, "docs/cli.md: missing flag %s (parsed by %s)\n",
                     flag.c_str(), tool.filename().string().c_str());
        ++*violations;
      }
    }
  }
  std::printf("flags   : %d flags across tools/*.cpp checked against "
              "docs/cli.md\n", checked);
  return checked;
}

int check_metrics(const fs::path& root, int* violations) {
  const std::string metrics_md = read_file(root / "docs" / "metrics.md");
  std::map<std::string, std::string> first_seen;  // name -> file
  for (const char* ext : {".cpp", ".hpp"}) {
    for (const fs::path& src : sorted_files(root / "src", ext, true)) {
      for (const std::string& name : collect_metric_names(read_file(src))) {
        first_seen.emplace(name, src.filename().string());
      }
    }
  }
  for (const auto& [name, file] : first_seen) {
    if (!contains_token(metrics_md, name)) {
      std::fprintf(stderr, "docs/metrics.md: missing metric %s (used in %s)\n",
                   name.c_str(), file.c_str());
      ++*violations;
    }
  }
  std::printf("metrics : %zu mtk.* names across src/ checked against "
              "docs/metrics.md\n", first_seen.size());
  return static_cast<int>(first_seen.size());
}

int check_links(const fs::path& root, int* violations) {
  std::vector<fs::path> docs = sorted_files(root, ".md", false);
  for (const fs::path& p : sorted_files(root / "docs", ".md", false)) {
    docs.push_back(p);
  }
  int checked = 0;
  for (const fs::path& doc : docs) {
    const std::string text = read_file(doc);
    std::size_t pos = 0;
    while ((pos = text.find("](", pos)) != std::string::npos) {
      const std::size_t start = pos + 2;
      const std::size_t end = text.find(')', start);
      pos = start;
      if (end == std::string::npos) break;
      std::string target = text.substr(start, end - start);
      if (target.empty() || target[0] == '#' ||
          target.rfind("http://", 0) == 0 ||
          target.rfind("https://", 0) == 0 ||
          target.rfind("mailto:", 0) == 0) {
        continue;
      }
      const std::size_t anchor = target.find('#');
      if (anchor != std::string::npos) target = target.substr(0, anchor);
      if (target.empty()) continue;
      ++checked;
      const fs::path resolved = doc.parent_path() / target;
      if (!fs::exists(resolved)) {
        std::fprintf(stderr, "%s: broken link %s\n",
                     doc.lexically_relative(root).string().c_str(),
                     target.c_str());
        ++*violations;
      }
    }
  }
  std::printf("links   : %d intra-repo markdown links resolved\n", checked);
  return checked;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: check_docs [--repo-root PATH]\n");
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (!fs::exists(root / "docs" / "cli.md")) {
    std::fprintf(stderr, "error: %s does not look like the repo root "
                 "(no docs/cli.md)\n", root.string().c_str());
    return 2;
  }

  int violations = 0;
  check_flags(root, &violations);
  check_metrics(root, &violations);
  check_links(root, &violations);
  if (violations > 0) {
    std::fprintf(stderr, "check_docs: %d violation%s\n", violations,
                 violations == 1 ? "" : "s");
    return 1;
  }
  std::printf("check_docs: ok\n");
  return 0;
}
