// Command-line MTTKRP driver over any storage backend: generates a random
// dense or sparse problem (or loads a FROSTT `.tns` file), runs the chosen
// algorithm — sequential, simulated-parallel (Algorithm 3), or a full
// par_cp_als decomposition — and reports wall-clock time, simulated
// communication against the paper's bounds, and (optionally) the simulated
// memory traffic.
//
// Usage:
//   mttkrp_cli --dims 64,64,64 --rank 16 --mode 1 --algo blocked
//              [--memory 32768] [--trace] [--seed 7]
//   mttkrp_cli --tns tensor.tns --backend csf --rank 16 --procs 64
//   mttkrp_cli --tns tensor.tns --backend coo --rank 8 --procs 8 --cp-als
//   mttkrp_cli --tns tensor.tns --rank 8 --procs 16 --plan      # ranked plans
//   mttkrp_cli --tns tensor.tns --rank 8 --procs 16 --autotune  # plan + run
//   mttkrp_cli --tns t.tns --rank 8 --procs 16 --autotune \
//              --calibrate --cache-file plan.cache   # measure machine, persist
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/mtk.hpp"

namespace {

using namespace mtk;

shape_t parse_dims(const std::string& s) {
  shape_t dims;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    dims.push_back(std::stoll(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return dims;
}

std::vector<int> parse_grid(const std::string& s) {
  std::vector<int> grid;
  for (index_t v : parse_dims(s)) grid.push_back(static_cast<int>(v));
  return grid;
}

MttkrpAlgo parse_algo(const std::string& s) {
  if (s == "reference") return MttkrpAlgo::kReference;
  if (s == "blocked") return MttkrpAlgo::kBlocked;
  if (s == "matmul") return MttkrpAlgo::kMatmul;
  if (s == "two_step") return MttkrpAlgo::kTwoStep;
  MTK_CHECK(false, "unknown algorithm '", s,
            "' (expected reference|blocked|matmul|two_step)");
  return MttkrpAlgo::kReference;
}

StorageFormat parse_backend(const std::string& s) {
  if (s == "dense") return StorageFormat::kDense;
  if (s == "coo") return StorageFormat::kCoo;
  if (s == "csf") return StorageFormat::kCsf;
  MTK_CHECK(false, "unknown backend '", s, "' (expected dense|coo|csf)");
  return StorageFormat::kDense;
}

SparsePartitionScheme parse_scheme(const std::string& s) {
  if (s == "block") return SparsePartitionScheme::kBlock;
  if (s == "medium") return SparsePartitionScheme::kMediumGrained;
  MTK_CHECK(false, "unknown partition scheme '", s,
            "' (expected block|medium)");
  return SparsePartitionScheme::kBlock;
}

CollectiveKind parse_collectives(const std::string& s) {
  if (s == "bucket") return CollectiveKind::kBucket;
  if (s == "rec" || s == "recursive") return CollectiveKind::kRecursive;
  MTK_CHECK(false, "unknown collective kind '", s,
            "' (expected bucket|rec)");
  return CollectiveKind::kBucket;
}

TransportKind parse_transport(const std::string& s) {
  if (s == "sim") return TransportKind::kSim;
  if (s == "threads" || s == "thread") return TransportKind::kThreads;
  MTK_CHECK(false, "unknown transport '", s, "' (expected sim|threads)");
  return TransportKind::kSim;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--dims I1,I2,... | --tns FILE) --rank R [--mode n]\n"
      "          [--backend dense|coo|csf] [--algo A] [--density d]\n"
      "          [--procs P] [--grid P1,P2,...] [--scheme block|medium]\n"
      "          [--collectives bucket|rec] [--transport sim|threads]\n"
      "          [--verify-counts] [--plan] [--autotune]\n"
      "          [--trace-out FILE] [--metrics-json FILE] [--drift-report]\n"
      "          [--flop-word-ratio F] [--latency-word-ratio L]\n"
      "          [--calibrate] [--cache-file FILE]\n"
      "          [--cp-als] [--iters N] [--tol T] [--save-tns FILE]\n"
      "          [--threads T] [--variant V] [--memory M] [--trace]\n"
      "          [--epsilon E] [--sample-count S] [--seed S]\n"
      "  --dims     tensor dimensions for a random problem, comma separated\n"
      "  --tns      load a FROSTT .tns coordinate file instead\n"
      "  --rank     factor matrix columns R / CP rank (required)\n"
      "  --mode     output mode, default 0\n"
      "  --backend  storage format, default dense (coo for --tns input)\n"
      "  --algo     dense algorithm: reference|blocked|matmul|two_step,\n"
      "             default blocked\n"
      "  --density  nonzero density of random sparse problems, default 0.05\n"
      "  --procs    simulate the parallel algorithm on P processors\n"
      "  --grid     explicit N-way processor grid (default: Eq.(14)-optimal)\n"
      "  --scheme   sparse partition: block|medium, default block\n"
      "  --collectives  collective schedule for explicit parallel runs:\n"
      "             bucket (ring) or rec (recursive doubling/halving,\n"
      "             falling back per group), default bucket; autotuned\n"
      "             runs use the planner's per-phase choice\n"
      "  --transport  execution backend for parallel runs: sim (counting\n"
      "             machine, default) or threads (one std::thread per rank\n"
      "             exchanging real mailbox messages); both run the same\n"
      "             schedules bit-identically and report measured seconds\n"
      "             next to the simulated word counts (--transport=X also\n"
      "             accepted)\n"
      "  --verify-counts  wrap the parallel transport (MTTKRP or --cp-als)\n"
      "             in the counting checker: every collective is replayed\n"
      "             on a shadow machine and word/message counters must\n"
      "             match the real exchange exactly; prints a one-line\n"
      "             parity summary\n"
      "  --trace-out  record a span trace of the whole run (collectives,\n"
      "             kernels, planner, sweeps; one track per transport rank)\n"
      "             and write Chrome trace-event JSON to FILE — load it in\n"
      "             Perfetto or chrome://tracing\n"
      "  --metrics-json  write a snapshot of the process-wide metrics\n"
      "             registry (mtk.* counters) to FILE in the BENCH_*\n"
      "             telemetry JSON shape\n"
      "  --drift-report  after a parallel run, print the plan-vs-actual\n"
      "             table: the predictor's per-phase words/messages vs the\n"
      "             transport's recorded phase counters; exits nonzero on\n"
      "             any drift when the sim backend promises exactness\n"
      "  --plan     print the planner's ranked execution plans and exit\n"
      "             (needs --procs)\n"
      "  --autotune let the planner pick algorithm/backend/grid/scheme for\n"
      "             --procs processors, run the choice, and report the\n"
      "             predicted vs simulated traffic and the optimality ratio\n"
      "             vs the parallel lower bound\n"
      "  --flop-word-ratio  planner machine balance (seconds-per-flop over\n"
      "             seconds-per-word), default 0 = communication only\n"
      "  --latency-word-ratio  planner latency balance (seconds-per-message\n"
      "             over seconds-per-word); > 0 lets the planner pick\n"
      "             recursive collectives per phase, default 0\n"
      "  --calibrate  measure this machine (copy bandwidth, per-message\n"
      "             overhead, kernel flop rates) and plan with the\n"
      "             measured alpha-beta-gamma ratios\n"
      "  --cache-file  persistent plan cache: load before planning, save\n"
      "             after (also stores the calibration)\n"
      "  --cp-als   run a full CP-ALS decomposition (par_cp_als with\n"
      "             --procs, sequential cp_als otherwise)\n"
      "  --iters    CP-ALS max iterations, default 20\n"
      "  --tol      CP-ALS fit tolerance, default 1e-6\n"
      "  --save-tns write the (sparse) tensor to a .tns file and exit\n"
      "  --threads  run the local (non-simulated) kernels with T OpenMP\n"
      "             threads; the sparse reduction schedule defaults to the\n"
      "             calibration's measured preference when one is loaded\n"
      "             (--calibrate / --cache-file), else the kernel heuristic\n"
      "  --variant  sparse kernel schedule override for --threads runs:\n"
      "             auto|privatized|atomic|tiled\n"
      "  --memory   fast-memory words for block-size selection/trace,\n"
      "             default 2^20\n"
      "  --trace    also simulate the two-level memory traffic and print\n"
      "             the Section IV bounds (dense sequential only)\n"
      "  --epsilon  accuracy budget for the randomized sketched backend:\n"
      "             > 0 runs leverage-sampled MTTKRP / sketched CP-ALS and\n"
      "             lets --plan generate sampled candidates, default 0 =\n"
      "             exact execution\n"
      "  --sample-count  explicit KRP sample rows (overrides the\n"
      "             epsilon-derived count)\n"
      "  --seed     RNG seed (also drives the sampling streams), default 1\n",
      argv0);
  return 1;
}

std::vector<int> default_grid(const shape_t& dims, index_t rank, int procs) {
  CostProblem cp;
  cp.dims = dims;
  cp.rank = rank;
  const GridSearchResult r = optimal_stationary_grid(cp, procs);
  std::vector<int> grid;
  for (index_t v : r.grid) grid.push_back(static_cast<int>(v));
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  shape_t dims;
  std::string tns_path;
  std::string save_tns_path;
  index_t rank = 0;
  int mode = 0;
  MttkrpAlgo algo = MttkrpAlgo::kBlocked;
  StorageFormat backend = StorageFormat::kDense;
  bool backend_set = false;
  double density = 0.05;
  int procs = 0;
  std::vector<int> grid;
  SparsePartitionScheme scheme = SparsePartitionScheme::kBlock;
  CollectiveKind collectives = CollectiveKind::kBucket;
  TransportKind transport = TransportKind::kSim;
  bool verify_counts = false;
  std::string trace_out;
  std::string metrics_json;
  bool drift_report = false;
  bool cp_als_run = false;
  bool plan_only = false;
  bool autotune = false;
  bool run_calibrate = false;
  std::string cache_path;
  double flop_word_ratio = 0.0;
  double latency_word_ratio = 0.0;
  int iters = 20;
  double tol = 1e-6;
  index_t memory = index_t{1} << 20;
  bool trace = false;
  int local_threads = 0;
  SparseKernelVariant variant = SparseKernelVariant::kAuto;
  bool variant_set = false;
  double epsilon = 0.0;
  index_t sample_count = 0;
  std::uint64_t seed = 1;

  try {
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      auto next = [&]() -> std::string {
        MTK_CHECK(a + 1 < argc, "missing value after ", arg);
        return argv[++a];
      };
      if (arg == "--dims") {
        dims = parse_dims(next());
      } else if (arg == "--tns") {
        tns_path = next();
      } else if (arg == "--save-tns") {
        save_tns_path = next();
      } else if (arg == "--rank") {
        rank = std::stoll(next());
      } else if (arg == "--mode") {
        mode = std::stoi(next());
      } else if (arg == "--algo") {
        algo = parse_algo(next());
      } else if (arg == "--backend") {
        backend = parse_backend(next());
        backend_set = true;
      } else if (arg == "--density") {
        density = std::stod(next());
      } else if (arg == "--procs") {
        procs = std::stoi(next());
      } else if (arg == "--grid") {
        grid = parse_grid(next());
      } else if (arg == "--scheme") {
        scheme = parse_scheme(next());
      } else if (arg == "--collectives") {
        collectives = parse_collectives(next());
      } else if (arg == "--transport") {
        transport = parse_transport(next());
      } else if (arg.rfind("--transport=", 0) == 0) {
        transport = parse_transport(arg.substr(std::strlen("--transport=")));
      } else if (arg == "--verify-counts") {
        verify_counts = true;
      } else if (arg == "--trace-out") {
        trace_out = next();
      } else if (arg == "--metrics-json") {
        metrics_json = next();
      } else if (arg == "--drift-report") {
        drift_report = true;
      } else if (arg == "--cp-als") {
        cp_als_run = true;
      } else if (arg == "--plan") {
        plan_only = true;
      } else if (arg == "--autotune") {
        autotune = true;
      } else if (arg == "--flop-word-ratio") {
        flop_word_ratio = std::stod(next());
      } else if (arg == "--latency-word-ratio") {
        latency_word_ratio = std::stod(next());
      } else if (arg == "--calibrate") {
        run_calibrate = true;
      } else if (arg == "--cache-file") {
        cache_path = next();
      } else if (arg == "--iters") {
        iters = std::stoi(next());
      } else if (arg == "--tol") {
        tol = std::stod(next());
      } else if (arg == "--threads") {
        local_threads = std::stoi(next());
        MTK_CHECK(local_threads >= 1, "--threads must be >= 1");
      } else if (arg == "--variant") {
        const std::string v = next();
        variant_set = true;
        if (v == "auto") {
          variant = SparseKernelVariant::kAuto;
        } else if (v == "privatized") {
          variant = SparseKernelVariant::kPrivatized;
        } else if (v == "atomic") {
          variant = SparseKernelVariant::kAtomic;
        } else if (v == "tiled") {
          variant = SparseKernelVariant::kTiled;
        } else {
          MTK_CHECK(false, "unknown --variant '", v,
                    "' (auto|privatized|atomic|tiled)");
        }
      } else if (arg == "--memory") {
        memory = std::stoll(next());
      } else if (arg == "--trace") {
        trace = true;
      } else if (arg == "--epsilon") {
        epsilon = std::stod(next());
        MTK_CHECK(epsilon >= 0.0 && epsilon < 1.0,
                  "--epsilon must be in [0, 1)");
      } else if (arg == "--sample-count") {
        sample_count = std::stoll(next());
        MTK_CHECK(sample_count >= 0, "--sample-count must be >= 0");
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else {
        return usage(argv[0]);
      }
    }
    if ((dims.empty() && tns_path.empty()) || rank <= 0) return usage(argv[0]);
    if (!tns_path.empty() && !backend_set) backend = StorageFormat::kCoo;
    if (!grid.empty()) {
      int grid_procs = 1;
      for (int e : grid) grid_procs *= e;
      if (procs == 0) procs = grid_procs;  // --grid alone implies --procs
      MTK_CHECK(procs == grid_procs, "--grid product ", grid_procs,
                " does not match --procs ", procs);
    }

    MTK_CHECK(!drift_report || procs > 0,
              "--drift-report needs a parallel run (--procs or --grid)");

    // Observability: the span tracer covers everything from here on
    // (planning, backend conversion, the run itself); artifacts are written
    // by finish() on every exit path.
    TraceSession session;
    if (!trace_out.empty()) session.start();
    const auto finish = [&](int rc) -> int {
      if (session.active()) {
        session.stop();
        if (session.write_chrome_trace_file(trace_out)) {
          std::printf("trace          : %s (%zu spans)\n", trace_out.c_str(),
                      session.events().size());
        } else {
          std::fprintf(stderr, "warning: could not write trace %s\n",
                       trace_out.c_str());
        }
      }
      if (!metrics_json.empty()) {
        if (MetricsRegistry::global().write_json_file(metrics_json)) {
          std::printf("metrics        : %s\n", metrics_json.c_str());
        } else {
          std::fprintf(stderr, "warning: could not write metrics %s\n",
                       metrics_json.c_str());
        }
      }
      return rc;
    };

    Rng rng(seed);

    // Build the tensor in its interchange form, then the requested backend.
    SparseTensor coo;
    DenseTensor dense;
    if (!tns_path.empty()) {
      coo = load_tensor_tns(tns_path);
      dims = coo.dims();
    } else if (backend == StorageFormat::kDense) {
      dense = DenseTensor::random_normal(dims, rng);
    } else {
      coo = SparseTensor::random_sparse(dims, density, rng);
    }
    if (backend == StorageFormat::kDense && !tns_path.empty()) {
      dense = coo.to_dense();
    }

    // Export-and-exit path, before any backend conversion work.
    if (!save_tns_path.empty()) {
      MTK_CHECK(backend != StorageFormat::kDense,
                "--save-tns needs a sparse backend (coo or csf)");
      save_tensor_tns(coo, save_tns_path);
      std::printf("saved          : %s (%lld nonzeros)\n",
                  save_tns_path.c_str(), static_cast<long long>(coo.nnz()));
      return finish(0);
    }

    CsfTensor csf;
    if (backend == StorageFormat::kCsf) csf = CsfTensor::from_coo(coo);

    StoredTensor x;
    switch (backend) {
      case StorageFormat::kDense: x = StoredTensor::dense_view(dense); break;
      case StorageFormat::kCoo: x = StoredTensor::coo_view(coo); break;
      case StorageFormat::kCsf: x = StoredTensor::csf_view(csf); break;
    }

    std::printf("tensor         : order %d, %lld stored values (%s)\n",
                x.order(), static_cast<long long>(x.stored_values()),
                to_string(backend));

    MTK_CHECK(!(plan_only || autotune) || procs > 0,
              "--plan/--autotune need --procs (or --grid)");

    // Persistent plan cache + machine calibration. The cache file (when
    // given) is loaded into the global cache before planning and written
    // back after; a calibration stored in it is reused unless --calibrate
    // asks for fresh probes.
    Calibration cal;
    if (!cache_path.empty()) {
      if (PlanCache::global().load(cache_path, &cal)) {
        std::printf("cache file     : %s (%zu plan%s%s)\n",
                    cache_path.c_str(), PlanCache::global().size(),
                    PlanCache::global().size() == 1 ? "" : "s",
                    cal.measured ? ", calibrated" : "");
      } else {
        std::printf("cache file     : %s (cold)\n", cache_path.c_str());
      }
    }
    if (run_calibrate) {
      cal = calibrate_machine();
      print_calibration(cal, stdout);
    }
    const auto save_cache = [&]() {
      if (cache_path.empty()) return;
      if (!PlanCache::global().save(cache_path, &cal)) {
        std::fprintf(stderr, "warning: could not write plan cache %s\n",
                     cache_path.c_str());
      }
    };
    const auto report_cache = [&](std::size_t hits_before) {
      std::printf("plan cache     : %s\n",
                  PlanCache::global().hits() > hits_before ? "hit" : "miss");
    };

    // Local (non-simulated) kernel schedule: --threads enables the threaded
    // sparse kernels; the reduction schedule comes from --variant when
    // given, otherwise from the measured calibration's tiled-vs-privatized
    // preference for this backend (the executable consumer of
    // Calibration::preferred_variant / ExecutionPlan::kernel_variant).
    MttkrpOptions local_opts;
    local_opts.algo = algo;
    local_opts.fast_memory_words = memory;
    if (local_threads > 0) {
#ifdef _OPENMP
      omp_set_num_threads(local_threads);
#endif
      local_opts.parallel = true;
      local_opts.kernel_variant =
          variant_set ? variant : cal.preferred_variant(backend);
      if (backend != StorageFormat::kDense) {
        std::printf("local kernels  : %d threads, %s variant%s\n",
                    local_threads, to_string(local_opts.kernel_variant),
                    variant_set ? ""
                    : cal.measured ? " (calibrated)"
                                   : " (heuristic)");
      }
    }

    PlannerOptions popts;
    popts.procs = procs;
    popts.mode = mode;
    popts.workload = cp_als_run ? PlanWorkload::kCpAls
                                : PlanWorkload::kSingleMttkrp;
    popts.flop_word_ratio = flop_word_ratio;
    popts.latency_word_ratio = latency_word_ratio;
    popts.machine = cal;
    popts.epsilon = epsilon;
    popts.sample_count = sample_count;
    if (cp_als_run) popts.reuse_count = std::max(1, iters) * x.order();

    SketchOptions sketch;
    sketch.epsilon = epsilon;
    sketch.sample_count = sample_count;
    sketch.seed = seed;

    if (plan_only) {
      const std::size_t hits_before = PlanCache::global().hits();
      const std::shared_ptr<const PlanReport> report =
          PlanCache::global().get_or_plan(x, rank, popts);
      print_plan_report(*report, stdout);
      report_cache(hits_before);
      save_cache();
      return finish(0);
    }

    if (cp_als_run && procs > 0) {
      ParCpAlsOptions opts;
      opts.rank = rank;
      opts.max_iterations = iters;
      opts.tolerance = tol;
      opts.grid = grid;
      if (!autotune && opts.grid.empty()) {
        opts.grid = default_grid(dims, rank, procs);
      }
      opts.seed = seed;
      opts.partition = scheme;
      opts.collectives = collectives;
      opts.autotune = autotune;
      opts.procs = procs;
      opts.flop_word_ratio = flop_word_ratio;
      opts.latency_word_ratio = latency_word_ratio;
      opts.machine = cal;
      opts.transport = transport;
      if (variant_set) opts.kernel_variant = variant;
      // --verify-counts / --drift-report need access to the transport after
      // the run (shadow counters, recorded phases), so the CLI owns it and
      // lends it to the solver. Planner grids are exact factorizations of
      // P, so `procs` ranks fit every path including autotune.
      std::unique_ptr<Transport> tp;
      const CountingTransport* counting = nullptr;
      if (verify_counts || drift_report) {
        tp = make_transport(transport, procs);
        if (verify_counts) {
          auto ct = std::make_unique<CountingTransport>(std::move(tp));
          counting = ct.get();
          tp = std::move(ct);
        }
        opts.transport_ptr = tp.get();
      }
      const std::size_t hits_before = PlanCache::global().hits();
      const auto start = std::chrono::steady_clock::now();
      const ParCpAlsResult r = par_cp_als(x, opts);
      const auto stop = std::chrono::steady_clock::now();
      if (autotune) {
        report_cache(hits_before);
        save_cache();
      }
      std::printf("par_cp_als     : P = %d, grid =", procs);
      for (int e : (r.autotuned ? r.plan.grid : opts.grid)) {
        std::printf(" %d", e);
      }
      std::printf(", scheme = %s\n",
                  to_string(r.autotuned ? r.plan.scheme : scheme));
      if (r.autotuned) {
        std::printf("autotuned      : backend %s, collectives %s, predicted "
                    "%.0f words / %.0f messages per iteration, %.2fx above "
                    "the per-MTTKRP lower bound\n",
                    to_string(r.plan.backend),
                    to_string(r.plan.collectives).c_str(),
                    r.plan.comm.words, r.plan.comm.messages,
                    r.plan.optimality_ratio);
      }
      std::printf("iterations     : %d (%s)\n", r.iterations,
                  r.converged ? "converged" : "max iterations");
      std::printf("final fit      : %.6f\n", r.final_fit);
      std::printf("mttkrp words   : %lld (bottleneck, all iterations)\n",
                  static_cast<long long>(r.total_mttkrp_words_max));
      std::printf("gram words     : %lld\n",
                  static_cast<long long>(r.total_gram_words_max));
      std::printf("messages       : %lld (bottleneck, incl. init)\n",
                  static_cast<long long>(r.total_messages_max));
      std::printf("transport      : %s, comm %.2f ms, compute %.2f ms "
                  "(measured)\n",
                  to_string(r.transport), r.comm_seconds * 1e3,
                  r.compute_seconds * 1e3);
      if (counting != nullptr) {
        std::printf("verify counts  : %lld collectives matched the "
                    "simulator word-for-word (%lld words, %lld messages "
                    "compared)\n",
                    static_cast<long long>(counting->collectives_checked()),
                    static_cast<long long>(counting->words_compared()),
                    static_cast<long long>(counting->messages_compared()));
      }
      std::printf("wall time      : %.2f ms\n",
                  std::chrono::duration<double, std::milli>(stop - start)
                      .count());
      if (drift_report) {
        // Compare the run's recorded phases against the per-iteration
        // prediction for the configuration that actually executed
        // (autotuned runs may have converted backend / picked the grid).
        SparseTensor scratch;
        PredictProblem pp = make_predict_problem(x, rank, scratch);
        pp.format = r.autotuned ? r.plan.backend : backend;
        const CommPrediction pred = predict_cp_als_iteration(
            pp, r.autotuned ? r.plan.grid : opts.grid,
            r.autotuned ? r.plan.scheme : scheme,
            r.autotuned ? r.plan.collectives
                        : CollectiveSchedule(collectives));
        const DriftReport drift =
            compute_drift(*tp, pred, r.iterations, r.iterations + 1);
        print_drift_report(stdout, drift);
        if (!drift.ok()) return finish(4);
      }
      return finish(0);
    }

    if (cp_als_run) {
      CpAlsOptions opts;
      opts.rank = rank;
      opts.max_iterations = iters;
      opts.tolerance = tol;
      opts.seed = seed;
      opts.mttkrp = local_opts;
      opts.sketch = sketch;
      const auto start = std::chrono::steady_clock::now();
      const CpAlsResult r = cp_als(x, opts);
      const auto stop = std::chrono::steady_clock::now();
      std::printf("cp_als         : sequential, backend %s%s\n",
                  to_string(backend),
                  sketch.enabled() ? ", sampled sweeps" : "");
      if (sketch.enabled()) {
        std::printf("sampled        : S = %lld KRP rows per sweep "
                    "(final fit is exact-evaluated)\n",
                    static_cast<long long>(
                        sketch.resolve_sample_count(rank)));
      }
      std::printf("iterations     : %d (%s)\n", r.iterations,
                  r.converged ? "converged" : "max iterations");
      std::printf("final fit      : %.6f\n", r.final_fit);
      std::printf("wall time      : %.2f ms\n",
                  std::chrono::duration<double, std::milli>(stop - start)
                      .count());
      return finish(0);
    }

    // Only the MTTKRP paths consume external factors; the CP-ALS drivers
    // above initialize their own from the seed.
    std::vector<Matrix> factors;
    for (index_t d : dims) {
      factors.push_back(Matrix::random_normal(d, rank, rng));
    }

    if (autotune) {
      const std::size_t hits_before = PlanCache::global().hits();
      const std::shared_ptr<const PlanReport> report =
          PlanCache::global().get_or_plan(x, rank, popts);
      const ExecutionPlan& plan = report->best();
      print_plan_report(*report, stdout);
      report_cache(hits_before);
      save_cache();

      // Materialize the planned backend (sparse formats convert once).
      StoredTensor x_run = x;
      CsfTensor csf_planned;
      if (plan.backend != backend) {
        if (plan.backend == StorageFormat::kCsf) {
          csf_planned = CsfTensor::from_coo(coo);
          x_run = StoredTensor::csf_view(csf_planned);
        } else if (plan.backend == StorageFormat::kCoo) {
          x_run = StoredTensor::coo_view(coo);
        }
      }

      std::unique_ptr<Transport> tp = make_transport(transport, procs);
      if (verify_counts) {
        tp = std::make_unique<CountingTransport>(std::move(tp));
      }
      const auto start = std::chrono::steady_clock::now();
      const ParMttkrpResult r =
          plan.algo == ParAlgo::kGeneral
              ? par_mttkrp_general(*tp, x_run, factors, mode, plan.grid,
                                   plan.collectives, plan.scheme,
                                   plan.kernel_variant)
              : par_mttkrp_stationary(*tp, x_run, factors, mode,
                                      plan.grid, plan.collectives,
                                      plan.scheme, plan.kernel_variant);
      const auto stop = std::chrono::steady_clock::now();

      ParProblem lb;
      lb.dims = dims;
      lb.rank = rank;
      lb.procs = procs;
      const double simulated = static_cast<double>(r.max_words_moved);
      std::printf("autotuned run  : %s on %s backend, collectives %s\n",
                  to_string(plan.algo), to_string(plan.backend),
                  to_string(plan.collectives).c_str());
      std::printf("words moved    : %.0f predicted, %.0f simulated "
                  "(bottleneck)\n", plan.comm.words, simulated);
      std::printf("messages       : %.0f predicted, %lld simulated "
                  "(bottleneck)\n", plan.comm.messages,
                  static_cast<long long>(r.max_messages));
      std::printf("optimality     : %.2fx predicted, %.2fx simulated vs "
                  "lower bound %.0f\n", plan.optimality_ratio,
                  par_optimality_ratio(simulated, lb), plan.lower_bound);
      std::printf("transport      : %s, kernel variant %s, comm %.2f ms, "
                  "compute %.2f ms (measured)\n",
                  to_string(r.transport), to_string(plan.kernel_variant),
                  r.comm_seconds * 1e3, r.compute_seconds * 1e3);
      if (const auto* ct = dynamic_cast<const CountingTransport*>(tp.get())) {
        std::printf("verify counts  : %lld collectives matched the "
                    "simulator word-for-word (%lld words, %lld messages "
                    "compared)\n",
                    static_cast<long long>(ct->collectives_checked()),
                    static_cast<long long>(ct->words_compared()),
                    static_cast<long long>(ct->messages_compared()));
      }
      std::printf("wall time      : %.2f ms\n",
                  std::chrono::duration<double, std::milli>(stop - start)
                      .count());
      // The planner's replay must track the simulator: require agreement
      // within 10% (the prediction is word-exact in practice).
      const bool within = std::abs(simulated - plan.comm.words) <=
                          0.10 * std::max(simulated, 1.0);
      std::printf("prediction     : %s (within 10%%)\n",
                  within ? "OK" : "FAIL");
      if (drift_report) {
        SparseTensor scratch;
        const PredictProblem pp = make_predict_problem(x_run, rank, scratch);
        const CommPrediction pred = predict_mttkrp_comm(
            pp, plan.algo, plan.grid, mode, plan.scheme, plan.collectives);
        const DriftReport drift = compute_drift(*tp, pred);
        print_drift_report(stdout, drift);
        if (!drift.ok()) return finish(4);
      }
      return finish(within ? 0 : 3);
    }

    if (procs > 0) {
      const std::vector<int> g =
          grid.empty() ? default_grid(dims, rank, procs) : grid;
      std::unique_ptr<Transport> tp = make_transport(transport, procs);
      if (verify_counts) {
        tp = std::make_unique<CountingTransport>(std::move(tp));
      }
      const auto start = std::chrono::steady_clock::now();
      const ParMttkrpResult r = par_mttkrp_stationary(
          *tp, x, factors, mode, g, collectives, scheme, variant);
      const auto stop = std::chrono::steady_clock::now();
      ParProblem lb;
      lb.dims = dims;
      lb.rank = rank;
      lb.procs = procs;
      std::printf("par algorithm  : stationary (Alg. 3), grid =");
      for (int e : g) std::printf(" %d", e);
      std::printf(", scheme = %s, collectives = %s\n", to_string(scheme),
                  to_string(collectives));
      std::printf("output         : %lld x %lld, frobenius %.6e\n",
                  static_cast<long long>(r.b.rows()),
                  static_cast<long long>(r.b.cols()), r.b.frobenius_norm());
      std::printf("words moved    : %lld (bottleneck), %lld (total sent)\n",
                  static_cast<long long>(r.max_words_moved),
                  static_cast<long long>(r.total_words_sent));
      std::printf("messages       : %lld (bottleneck)\n",
                  static_cast<long long>(r.max_messages));
      std::printf("lower bound    : %.0f words\n", par_lower_bound(lb));
      std::printf("transport      : %s, comm %.2f ms, compute %.2f ms "
                  "(measured)\n",
                  to_string(r.transport), r.comm_seconds * 1e3,
                  r.compute_seconds * 1e3);
      if (const auto* ct = dynamic_cast<const CountingTransport*>(tp.get())) {
        std::printf("verify counts  : %lld collectives matched the "
                    "simulator word-for-word (%lld words, %lld messages "
                    "compared)\n",
                    static_cast<long long>(ct->collectives_checked()),
                    static_cast<long long>(ct->words_compared()),
                    static_cast<long long>(ct->messages_compared()));
      }
      std::printf("wall time      : %.2f ms\n",
                  std::chrono::duration<double, std::milli>(stop - start)
                      .count());
      if (drift_report) {
        SparseTensor scratch;
        const PredictProblem pp = make_predict_problem(x, rank, scratch);
        const CommPrediction pred = predict_mttkrp_comm(
            pp, ParAlgo::kStationary, g, mode, scheme,
            CollectiveSchedule(collectives));
        const DriftReport drift = compute_drift(*tp, pred);
        print_drift_report(stdout, drift);
        if (!drift.ok()) return finish(4);
      }
      return finish(0);
    }

    if (sketch.enabled()) {
      // Sampled single MTTKRP: run the exact kernel for reference, then the
      // leverage-sampled estimator, and report the accuracy/speedup trade.
      const index_t s_count = sketch.resolve_sample_count(rank);
      Rng srng(derive_seed(sketch.seed, static_cast<std::uint64_t>(mode)));
      const auto td = std::chrono::steady_clock::now();
      const KrpSample sample =
          sample_krp_leverage(factors, mode, s_count, srng);
      const auto t0 = std::chrono::steady_clock::now();
      // Warm both paths before timing: the dispatch layer builds its CSF
      // forest lazily on the first call, and that one-time compression is
      // amortized across a CP workload, not part of the kernel trade.
      SampledMttkrpStats stats;
      (void)mttkrp(x, factors, mode, local_opts);
      (void)mttkrp_sampled(x, factors, sample, local_opts, &stats);
      const auto t1 = std::chrono::steady_clock::now();
      const Matrix exact = mttkrp(x, factors, mode, local_opts);
      const auto t2 = std::chrono::steady_clock::now();
      const Matrix approx =
          mttkrp_sampled(x, factors, sample, local_opts);
      const auto t3 = std::chrono::steady_clock::now();

      double num = 0.0, den = 0.0;
      for (index_t i = 0; i < exact.rows(); ++i) {
        for (index_t r = 0; r < exact.cols(); ++r) {
          const double d = approx(i, r) - exact(i, r);
          num += d * d;
          den += exact(i, r) * exact(i, r);
        }
      }
      const double draw_ms =
          std::chrono::duration<double, std::milli>(t0 - td).count();
      const double exact_ms =
          std::chrono::duration<double, std::milli>(t2 - t1).count();
      const double kernel_ms =
          std::chrono::duration<double, std::milli>(t3 - t2).count();
      std::printf("sampled mttkrp : S = %lld KRP rows, %lld of %lld "
                  "nonzeros visited\n",
                  static_cast<long long>(s_count),
                  static_cast<long long>(stats.surviving_nonzeros),
                  static_cast<long long>(x.stored_values()));
      std::printf("relative error : %.4f (predicted %.4f)\n",
                  std::sqrt(num / std::max(den, 1e-300)),
                  predicted_sampling_error(rank, s_count));
      std::printf("exact kernel   : %.2f ms\n", exact_ms);
      std::printf("sampled kernel : %.2f ms (+%.2f ms sample draw), "
                  "%.2fx kernel speedup\n",
                  kernel_ms, draw_ms, exact_ms / std::max(kernel_ms, 1e-9));
      return finish(0);
    }

    const auto start = std::chrono::steady_clock::now();
    const Matrix b = mttkrp(x, factors, mode, local_opts);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();

    std::printf("algorithm      : %s\n",
                backend == StorageFormat::kDense ? to_string(algo)
                                                 : to_string(backend));
    std::printf("output         : %lld x %lld, frobenius %.6e\n",
                static_cast<long long>(b.rows()),
                static_cast<long long>(b.cols()), b.frobenius_norm());
    std::printf("wall time      : %.2f ms\n", ms);

    if (trace && backend == StorageFormat::kDense) {
      TraceProblem tp;
      tp.dims = dims;
      tp.rank = rank;
      tp.mode = mode;
      const index_t block = max_block_size(x.order(), memory);
      const MemoryStats stats = measure_traffic(
          memory, ReplacementPolicy::kLru, [&](AccessSink& sink) {
            if (algo == MttkrpAlgo::kMatmul) {
              trace_matmul(tp, memory, sink);
            } else if (algo == MttkrpAlgo::kBlocked) {
              trace_blocked(tp, block, sink);
            } else {
              trace_unblocked(tp, sink);
            }
          });
      SeqProblem sp;
      sp.dims = dims;
      sp.rank = rank;
      sp.fast_memory = memory;
      std::printf("traffic (M=%lld): %lld words\n",
                  static_cast<long long>(memory),
                  static_cast<long long>(stats.traffic()));
      std::printf("lower bound    : %.0f words (Eqs. 4/5)\n",
                  seq_lower_bound(sp));
      std::printf("Eq.(21) upper  : %.0f words (b = %lld)\n",
                  seq_upper_bound_blocked(sp, block),
                  static_cast<long long>(block));
    }
    return finish(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
