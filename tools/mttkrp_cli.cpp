// Command-line MTTKRP driver: generates a random dense problem, runs the
// chosen algorithm, reports wall-clock time and (optionally) the simulated
// memory traffic against the paper's bounds.
//
// Usage:
//   mttkrp_cli --dims 64,64,64 --rank 16 --mode 1 --algo blocked
//              [--memory 32768] [--trace] [--seed 7]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/mtk.hpp"

namespace {

using namespace mtk;

shape_t parse_dims(const std::string& s) {
  shape_t dims;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    dims.push_back(std::stoll(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return dims;
}

MttkrpAlgo parse_algo(const std::string& s) {
  if (s == "reference") return MttkrpAlgo::kReference;
  if (s == "blocked") return MttkrpAlgo::kBlocked;
  if (s == "matmul") return MttkrpAlgo::kMatmul;
  if (s == "two_step") return MttkrpAlgo::kTwoStep;
  MTK_CHECK(false, "unknown algorithm '", s,
            "' (expected reference|blocked|matmul|two_step)");
  return MttkrpAlgo::kReference;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dims I1,I2,... --rank R [--mode n] [--algo A]\n"
      "          [--memory M] [--trace] [--seed S]\n"
      "  --dims    tensor dimensions, comma separated (required)\n"
      "  --rank    factor matrix columns R (required)\n"
      "  --mode    output mode, default 0\n"
      "  --algo    reference|blocked|matmul|two_step, default blocked\n"
      "  --memory  fast-memory words for block-size selection/trace,\n"
      "            default 2^20\n"
      "  --trace   also simulate the two-level memory traffic and print\n"
      "            the Section IV bounds\n"
      "  --seed    RNG seed, default 1\n",
      argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  shape_t dims;
  index_t rank = 0;
  int mode = 0;
  MttkrpAlgo algo = MttkrpAlgo::kBlocked;
  index_t memory = index_t{1} << 20;
  bool trace = false;
  std::uint64_t seed = 1;

  try {
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      auto next = [&]() -> std::string {
        MTK_CHECK(a + 1 < argc, "missing value after ", arg);
        return argv[++a];
      };
      if (arg == "--dims") {
        dims = parse_dims(next());
      } else if (arg == "--rank") {
        rank = std::stoll(next());
      } else if (arg == "--mode") {
        mode = std::stoi(next());
      } else if (arg == "--algo") {
        algo = parse_algo(next());
      } else if (arg == "--memory") {
        memory = std::stoll(next());
      } else if (arg == "--trace") {
        trace = true;
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else {
        return usage(argv[0]);
      }
    }
    if (dims.empty() || rank <= 0) return usage(argv[0]);

    Rng rng(seed);
    const DenseTensor x = DenseTensor::random_normal(dims, rng);
    std::vector<Matrix> factors;
    for (index_t d : dims) {
      factors.push_back(Matrix::random_normal(d, rank, rng));
    }

    MttkrpOptions opts;
    opts.algo = algo;
    opts.fast_memory_words = memory;

    const auto start = std::chrono::steady_clock::now();
    const Matrix b = mttkrp(x, factors, mode, opts);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();

    std::printf("algorithm      : %s\n", to_string(algo));
    std::printf("tensor         : %lld entries, order %d\n",
                static_cast<long long>(x.size()), x.order());
    std::printf("output         : %lld x %lld, frobenius %.6e\n",
                static_cast<long long>(b.rows()),
                static_cast<long long>(b.cols()), b.frobenius_norm());
    std::printf("wall time      : %.2f ms\n", ms);

    if (trace) {
      TraceProblem tp;
      tp.dims = dims;
      tp.rank = rank;
      tp.mode = mode;
      const index_t block = max_block_size(x.order(), memory);
      const MemoryStats stats = measure_traffic(
          memory, ReplacementPolicy::kLru, [&](AccessSink& sink) {
            if (algo == MttkrpAlgo::kMatmul) {
              trace_matmul(tp, memory, sink);
            } else if (algo == MttkrpAlgo::kBlocked) {
              trace_blocked(tp, block, sink);
            } else {
              trace_unblocked(tp, sink);
            }
          });
      SeqProblem sp;
      sp.dims = dims;
      sp.rank = rank;
      sp.fast_memory = memory;
      std::printf("traffic (M=%lld): %lld words\n",
                  static_cast<long long>(memory),
                  static_cast<long long>(stats.traffic()));
      std::printf("lower bound    : %.0f words (Eqs. 4/5)\n",
                  seq_lower_bound(sp));
      std::printf("Eq.(21) upper  : %.0f words (b = %lld)\n",
                  seq_upper_bound_blocked(sp, block),
                  static_cast<long long>(block));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
