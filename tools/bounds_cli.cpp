// Command-line bound calculator: prints every bound the paper proves for a
// given problem, sequential and parallel, plus the optimal processor grids.
//
// Usage:
//   bounds_cli --dims 1024,1024,1024 --rank 64 --memory 65536 --procs 4096
#include <cstdio>
#include <string>

#include "src/mtk.hpp"

namespace {

using namespace mtk;

shape_t parse_dims(const std::string& s) {
  shape_t dims;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    dims.push_back(std::stoll(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return dims;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dims I1,I2,... --rank R [--memory M] "
               "[--procs P]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  shape_t dims;
  index_t rank = 0;
  index_t memory = 0;
  index_t procs = 0;

  try {
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      auto next = [&]() -> std::string {
        MTK_CHECK(a + 1 < argc, "missing value after ", arg);
        return argv[++a];
      };
      if (arg == "--dims") {
        dims = parse_dims(next());
      } else if (arg == "--rank") {
        rank = std::stoll(next());
      } else if (arg == "--memory") {
        memory = std::stoll(next());
      } else if (arg == "--procs") {
        procs = std::stoll(next());
      } else {
        return usage(argv[0]);
      }
    }
    if (dims.empty() || rank <= 0) return usage(argv[0]);

    const int n = static_cast<int>(dims.size());
    std::printf("problem: order %d, I = %lld, R = %lld\n", n,
                static_cast<long long>(shape_size(dims)),
                static_cast<long long>(rank));

    if (memory > 0) {
      SeqProblem sp;
      sp.dims = dims;
      sp.rank = rank;
      sp.fast_memory = memory;
      const index_t b = max_block_size(n, memory);
      std::printf("\nsequential (M = %lld words):\n",
                  static_cast<long long>(memory));
      std::printf("  Eq.(4)  memory-dependent LB : %.4e\n",
                  seq_lower_bound_memory(sp));
      std::printf("  Eq.(5)  trivial LB          : %.4e\n",
                  seq_lower_bound_trivial(sp));
      std::printf("  Eq.(21) Algorithm 2 UB      : %.4e (b = %lld)\n",
                  seq_upper_bound_blocked(sp, b), static_cast<long long>(b));
      std::printf("  Alg. 1 UB                   : %.4e\n",
                  seq_upper_bound_unblocked(sp));
      std::printf("  matmul model                : %.4e\n",
                  seq_model_matmul_cost(sp));
      const shape_t rect = optimize_block_shape(dims, rank, 0,
                                                memory);
      std::printf("  rectangular block (mode 0) :");
      for (index_t v : rect) std::printf(" %lld", static_cast<long long>(v));
      std::printf("  -> model %.4e\n",
                  blocked_rect_traffic_model(dims, rank, 0, rect));
    }

    if (procs > 0) {
      ParProblem pp;
      pp.dims = dims;
      pp.rank = rank;
      pp.procs = procs;
      std::printf("\nparallel (P = %lld):\n", static_cast<long long>(procs));
      std::printf("  Thm 4.2 LB                  : %.4e\n",
                  par_lower_bound_thm42(pp));
      std::printf("  Thm 4.3 LB                  : %.4e\n",
                  par_lower_bound_thm43(pp));
      std::printf("  combined LB                 : %.4e\n",
                  par_lower_bound(pp));

      CostProblem cp;
      cp.dims = dims;
      cp.rank = rank;
      const GridSearchResult stat = optimal_stationary_grid(cp, procs);
      if (stat.feasible) {
        std::printf("  Alg. 3 (Eq. 14) optimal grid:");
        for (index_t g : stat.grid) {
          std::printf(" %lld", static_cast<long long>(g));
        }
        std::printf("  -> %.4e words sent/rank\n", stat.cost);
      } else {
        std::printf("  Alg. 3: no feasible N-way grid (P too large)\n");
      }
      const GridSearchResult gen = optimal_general_grid(cp, procs);
      if (gen.feasible) {
        std::printf("  Alg. 4 (Eq. 18) optimal grid:");
        for (index_t g : gen.grid) {
          std::printf(" %lld", static_cast<long long>(g));
        }
        std::printf("  -> %.4e words sent/rank\n", gen.cost);
      }
      const CarmaCost mm = mttkrp_via_matmul_cost(
          n, static_cast<double>(shape_size(dims)),
          static_cast<double>(rank), static_cast<double>(procs));
      std::printf("  matmul (CARMA, %d large dim%s): %.4e words\n",
                  mm.large_dims, mm.large_dims > 1 ? "s" : "", mm.words);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
