// Release smoke for the sparse kernel hot path: times the tiled CSF kernel
// against the critical-section (privatized scratch-and-merge) baseline on a
// skewed tensor at a fixed thread count, and exits nonzero if tiled is
// slower than the baseline by more than the allowed threshold. CI runs this
// on the `gen_tns` skewed tensor at >= 4 threads, where the baseline pays
// thread-count copies of the full output in zeroing plus a serialized
// merge and the tiled schedule pays neither.
//
// Also verifies (a) the two schedules agree numerically, (b) repeated
// mttkrp_all_modes calls on one handle perform zero CSF rebuilds after the
// first, and (c) the fused all-modes walk reports a multiply reuse factor
// > 1 against N independent single-tree walks.
//
// Usage:
//   kernel_smoke [--tns FILE] [--rank R] [--threads T] [--reps K]
//                [--min-speedup S]
// Without --tns a skewed synthetic tensor (gen_tns-equivalent) is used.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/mtk.hpp"

namespace {

using namespace mtk;
using Clock = std::chrono::steady_clock;

volatile double g_sink = 0.0;

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const Clock::time_point start = Clock::now();
    fn();
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tns_path;
  index_t rank = 16;
  int threads = 4;
  int reps = 5;
  double min_speedup = 1.0;

  try {
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      auto next = [&]() -> std::string {
        MTK_CHECK(a + 1 < argc, "missing value after ", arg);
        return argv[++a];
      };
      if (arg == "--tns") {
        tns_path = next();
      } else if (arg == "--rank") {
        rank = std::stoll(next());
      } else if (arg == "--threads") {
        threads = std::stoi(next());
      } else if (arg == "--reps") {
        reps = std::stoi(next());
      } else if (arg == "--min-speedup") {
        min_speedup = std::stod(next());
      } else {
        std::fprintf(stderr,
                     "usage: %s [--tns FILE] [--rank R] [--threads T] "
                     "[--reps K] [--min-speedup S]\n",
                     argv[0]);
        return 1;
      }
    }

#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    std::printf("note           : built without OpenMP; thread count %d "
                "is nominal\n",
                threads);
#endif

    SparseTensor coo;
    if (tns_path.empty()) {
      coo = make_frostt_like(*find_frostt_preset("long-mode"), 7);
    } else {
      coo = load_tensor_tns(tns_path);
    }
    Rng rng(20180521);
    std::vector<Matrix> factors;
    for (index_t d : coo.dims()) {
      factors.push_back(Matrix::random_normal(d, rank, rng));
    }
    // Root the tree at the longest mode so the output is large: exactly the
    // regime where the critical-section baseline's full-output scratch
    // copies hurt.
    int root = 0;
    for (int k = 1; k < coo.order(); ++k) {
      if (coo.dim(k) > coo.dim(root)) root = k;
    }
    const CsfTensor csf = CsfTensor::from_coo(coo, root);

    std::printf("tensor         : dims =");
    for (index_t d : coo.dims()) {
      std::printf(" %lld", static_cast<long long>(d));
    }
    std::printf(", nnz = %lld, rank = %lld, threads = %d, output mode %d\n",
                static_cast<long long>(coo.nnz()),
                static_cast<long long>(rank), threads, root);

    // Correctness first: the two schedules must agree.
    const Matrix tiled_b =
        mttkrp_csf(csf, factors, root, true, SparseKernelVariant::kTiled);
    const Matrix priv_b = mttkrp_csf(csf, factors, root, true,
                                     SparseKernelVariant::kPrivatized);
    const double diff = max_abs_diff(tiled_b, priv_b);
    std::printf("agreement      : max |tiled - privatized| = %.3e\n", diff);
    MTK_CHECK(diff < 1e-8, "tiled and privatized kernels disagree");

    const double tiled_s = best_seconds(reps, [&] {
      const Matrix b =
          mttkrp_csf(csf, factors, root, true, SparseKernelVariant::kTiled);
      g_sink = b(0, 0);
    });
    const double priv_s = best_seconds(reps, [&] {
      const Matrix b = mttkrp_csf(csf, factors, root, true,
                                  SparseKernelVariant::kPrivatized);
      g_sink = b(0, 0);
    });
    const double speedup = priv_s / tiled_s;
    std::printf("csf kernel     : tiled %.3f ms, critical-section %.3f ms, "
                "speedup %.2fx (threshold %.2fx)\n",
                tiled_s * 1e3, priv_s * 1e3, speedup, min_speedup);

    // Memoized multi-tree all-modes: zero rebuilds after the first call,
    // reuse factor > 1 versus N independent single-tree walks.
    const StoredTensor handle = StoredTensor::coo_view(coo);
    const AllModesResult first = mttkrp_all_modes(handle, factors);
    const index_t builds_after_first = CsfTensor::build_count();
    const AllModesResult second = mttkrp_all_modes(handle, factors);
    const index_t rebuilds = CsfTensor::build_count() - builds_after_first;
    const CsfSet forest = CsfSet::build(coo, CsfSetPolicy::kOnePerMode);
    const double reuse =
        static_cast<double>(csf_separate_multiply_count(forest, rank)) /
        static_cast<double>(second.multiplies);
    std::printf("all-modes      : fused multiplies %lld, reuse factor "
                "%.2fx, per-iteration CSF rebuilds %lld\n",
                static_cast<long long>(second.multiplies), reuse,
                static_cast<long long>(rebuilds));
    MTK_CHECK(rebuilds == 0, "repeated mttkrp_all_modes rebuilt CSF trees");
    MTK_CHECK(reuse > 1.0, "fused all-modes walk reported no reuse");

    if (speedup < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: tiled CSF kernel speedup %.2fx below the %.2fx "
                   "threshold\n",
                   speedup, min_speedup);
      return 1;
    }
    std::printf("kernel smoke   : PASS\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
