// Release perf/accuracy smoke for the randomized sketched backend: on a
// FROSTT-preset-shaped tensor (gen_tns --preset amazon), the leverage-
// sampled MTTKRP kernel must beat the exact CSF kernel by --min-speedup
// wall-clock (sample prebuilt, both serial — the regime CP-ALS pays every
// sweep after the once-per-refresh draw), and a sketched CP-ALS run must
// land within --max-error of the exact driver's residual:
//
//   ||X - model_sampled|| <= (1 + max_error) * ||X - model_exact||.
//
// Exit codes: 0 OK, 2 usage/error, 3 speedup assertion failed, 4 accuracy
// assertion failed. Perf assertions are noise-prone under Debug/sanitizer
// builds, so CMake registers this for Release only (RUN_SERIAL).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/mtk.hpp"

namespace {

using namespace mtk;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --tns FILE [--rank R] [--sample-count S] [--iters N]\n"
      "          [--min-speedup X] [--max-error E] [--reps K] [--seed S]\n"
      "  --tns          FROSTT .tns input (required; typically\n"
      "                 gen_tns --preset amazon)\n"
      "  --rank         CP rank, default 16\n"
      "  --sample-count KRP sample rows, default 2048 (kernel) and the\n"
      "                 epsilon-derived count for the CP-ALS check\n"
      "  --iters        CP-ALS sweeps for the accuracy check, default 10\n"
      "  --min-speedup  required exact-CSF / sampled wall-clock ratio,\n"
      "                 default 5.0\n"
      "  --max-error    allowed relative residual excess, default 0.05\n"
      "  --reps         timing repetitions (best-of), default 5\n"
      "  --seed         sampling/init seed, default 7\n",
      argv0);
  return 2;
}

double best_of_ms(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tns_path;
  index_t rank = 16;
  index_t sample_count = 2048;
  int iters = 10;
  double min_speedup = 5.0;
  double max_error = 0.05;
  int reps = 5;
  std::uint64_t seed = 7;

  try {
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      auto next = [&]() -> std::string {
        MTK_CHECK(a + 1 < argc, "missing value after ", arg);
        return argv[++a];
      };
      if (arg == "--tns") {
        tns_path = next();
      } else if (arg == "--rank") {
        rank = std::stoll(next());
      } else if (arg == "--sample-count") {
        sample_count = std::stoll(next());
      } else if (arg == "--iters") {
        iters = std::stoi(next());
      } else if (arg == "--min-speedup") {
        min_speedup = std::stod(next());
      } else if (arg == "--max-error") {
        max_error = std::stod(next());
      } else if (arg == "--reps") {
        reps = std::stoi(next());
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else {
        return usage(argv[0]);
      }
    }
    if (tns_path.empty() || rank < 1 || sample_count < 1 || reps < 1) {
      return usage(argv[0]);
    }

    const SparseTensor coo = load_tensor_tns(tns_path);
    const int n = coo.order();
    int mode = 0;  // output the longest mode: the biggest exact kernel
    for (int k = 1; k < n; ++k) {
      if (coo.dim(k) > coo.dim(mode)) mode = k;
    }
    // The forest holds one tree per root mode: the exact kernel runs on
    // the output-rooted tree (owner-computes), the sampled kernel routes
    // to a complement-rooted tree (root-level pruning) — both prebuilt,
    // the same amortized structures a CP-ALS sweep reuses.
    const CsfSet forest = CsfSet::build(coo, CsfSetPolicy::kOnePerMode);
    const CsfTensor& csf = forest.tree_for(mode);
    Rng frng(seed);
    std::vector<Matrix> factors;
    for (index_t d : coo.dims()) {
      factors.push_back(Matrix::random_uniform(d, rank, frng, 0.1, 1.0));
    }
    std::printf("tensor         : %lld nonzeros, output mode %d (extent "
                "%lld), rank %lld\n",
                static_cast<long long>(coo.nnz()), mode,
                static_cast<long long>(coo.dim(mode)),
                static_cast<long long>(rank));

    // --- kernel speedup: exact CSF vs sampled (prebuilt sample) ----------
    Rng srng(derive_seed(seed, 1));
    const KrpSample sample =
        sample_krp_leverage(factors, mode, sample_count, srng);
    SampledMttkrpStats stats;
    const Matrix warm = mttkrp_sampled(forest, factors, sample, {}, &stats);

    const double exact_ms = best_of_ms(reps, [&]() {
      Matrix b = mttkrp_csf(csf, factors, mode, /*parallel=*/false);
      (void)b;
    });
    const double sampled_ms = best_of_ms(reps, [&]() {
      Matrix b = mttkrp_sampled(forest, factors, sample);
      (void)b;
    });
    const double speedup = exact_ms / std::max(sampled_ms, 1e-9);
    std::printf("kernel         : exact csf %.3f ms, sampled %.3f ms "
                "(S = %lld, %lld of %lld nonzeros) -> %.2fx\n",
                exact_ms, sampled_ms,
                static_cast<long long>(sample_count),
                static_cast<long long>(stats.surviving_nonzeros),
                static_cast<long long>(coo.nnz()), speedup);

    // --- accuracy: sketched CP-ALS residual vs the exact driver ----------
    CpAlsOptions exact_opts;
    exact_opts.rank = rank;
    exact_opts.max_iterations = iters;
    exact_opts.seed = seed;
    const CpAlsResult exact = cp_als(coo, exact_opts);

    CpAlsOptions sampled_opts = exact_opts;
    sampled_opts.sketch.sample_count = sample_count;
    sampled_opts.sketch.seed = derive_seed(seed, 2);
    const CpAlsResult sampled = cp_als(coo, sampled_opts);

    // Both final fits are exact-evaluated (the sampled driver re-measures
    // its returned model with one exact MTTKRP), so the residual ratio
    // compares true model quality.
    const double res_exact = 1.0 - exact.final_fit;
    const double res_sampled = 1.0 - sampled.final_fit;
    const double ratio = res_sampled / std::max(res_exact, 1e-12);
    std::printf("cp-als         : exact fit %.6f, sampled fit %.6f "
                "(residual ratio %.4f, budget %.2f)\n",
                exact.final_fit, sampled.final_fit, ratio,
                1.0 + max_error);

    bool ok = true;
    if (speedup < min_speedup) {
      std::printf("speedup        : FAIL (%.2fx < %.2fx)\n", speedup,
                  min_speedup);
      ok = false;
    } else {
      std::printf("speedup        : OK (>= %.2fx)\n", min_speedup);
    }
    if (!ok) return 3;
    if (ratio > 1.0 + max_error) {
      std::printf("accuracy       : FAIL (ratio %.4f > %.4f)\n", ratio,
                  1.0 + max_error);
      return 4;
    }
    std::printf("accuracy       : OK (within %.0f%% of the exact "
                "residual)\n", 100.0 * max_error);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
