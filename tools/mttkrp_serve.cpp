// mttkrp_serve: the long-running serving frontend. Reads JSON-lines
// requests from stdin (or --script FILE), answers them on a worker pool
// against the named-tensor registry, and streams JSON-line responses to
// stdout. Status and summary lines go to stderr so stdout stays a clean
// response stream. Full protocol and flag reference: docs/serving.md and
// docs/cli.md.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/io/tensor_io.hpp"
#include "src/parsim/transport/fault.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/planner/calibrate.hpp"
#include "src/planner/plan_cache.hpp"
#include "src/serve/server.hpp"
#include "src/support/check.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: mttkrp_serve [--preload NAME=PATH]... [--backend coo|csf]\n"
      "          [--workers N] [--batch-window N] [--max-queue N]\n"
      "          [--staleness F] [--epsilon F] [--admit-max-cost F]\n"
      "          [--plan-procs P] [--threads T]\n"
      "          [--deadline-ms F] [--retries N] [--retry-backoff-ms F]\n"
      "          [--shed-epsilon F] [--max-resident-bytes N]\n"
      "          [--max-line-bytes N] [--chaos SCHEDULE]\n"
      "          [--cache-file PATH] [--calibrate] [--script FILE]\n"
      "          [--trace-out FILE] [--metrics-json FILE]\n"
      "\n"
      "  Long-running MTTKRP / CP-ALS server: one JSON request per input\n"
      "  line, one JSON response per output line (see docs/serving.md).\n"
      "  Runs until stdin EOF or a {\"op\":\"shutdown\"} request.\n"
      "\n"
      "  --preload   register a FROSTT .tns file under NAME before serving\n"
      "              (repeatable)\n"
      "  --backend   storage backend for preloaded tensors: csf (default,\n"
      "              shared-forest kernels) or coo\n"
      "  --workers   worker threads answering requests (default 2)\n"
      "  --batch-window  max same-key mttkrp requests coalesced into one\n"
      "              batch (default 8; 1 disables batching)\n"
      "  --max-queue admission: queued-request cap; submissions beyond it\n"
      "              are rejected (default 256)\n"
      "  --staleness pending/base nonzero ratio at which appended deltas\n"
      "              are folded into a fresh base + CSF rebuild\n"
      "              (default 0.25)\n"
      "  --epsilon   default accuracy budget routing requests without their\n"
      "              own epsilon to the leverage-sampled backend (default\n"
      "              0 = exact)\n"
      "  --admit-max-cost  reject requests whose planner-predicted score\n"
      "              exceeds this (default 0 = no cost gate)\n"
      "  --plan-procs  modeled processor count for the predicted-cost\n"
      "              lookup (default 4)\n"
      "  --threads   OpenMP threads for the local kernels inside each\n"
      "              request (default: serial kernels)\n"
      "  --deadline-ms  default per-request wall-clock deadline; requests\n"
      "              past it answer a typed deadline_exceeded error\n"
      "              (default 0 = no deadline; per-request \"deadline_ms\"\n"
      "              overrides)\n"
      "  --retries   retry budget for transiently-failed work items\n"
      "              (default 2)\n"
      "  --retry-backoff-ms  base of the exponential retry backoff\n"
      "              (default 1)\n"
      "  --shed-epsilon  overload shedding: degrade over-budget exact\n"
      "              mttkrp requests to the sampled backend with this\n"
      "              epsilon instead of rejecting them (default 0 = off)\n"
      "  --max-resident-bytes  registry memory budget; cold tensors are\n"
      "              LRU-evicted past it (default 0 = unbounded)\n"
      "  --max-line-bytes  bound on one request line; longer lines answer\n"
      "              a typed error (default 1048576)\n"
      "  --chaos     deterministic fault injection for the serve loop:\n"
      "              SCHEDULE is 'seed=S delay=P:US fail=P ...' or @FILE\n"
      "              (see docs/serving.md, \"Chaos runbook\")\n"
      "  --cache-file  persistent plan cache: loaded (with any stored\n"
      "              calibration) before serving, saved on shutdown\n"
      "  --calibrate measure machine parameters before serving instead of\n"
      "              using cached/default ones\n"
      "  --script    read requests from FILE instead of stdin ('#' lines\n"
      "              are comments)\n"
      "  --trace-out write a Chrome trace of the serving run on shutdown\n"
      "  --metrics-json  write the metrics snapshot on shutdown\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mtk;
  try {
    std::vector<std::pair<std::string, std::string>> preloads;
    StorageFormat backend = StorageFormat::kCsf;
    ServeOptions sopts;
    std::string cache_path;
    std::string script_path;
    std::string trace_out;
    std::string metrics_json;
    bool run_calibrate = false;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        MTK_CHECK(i + 1 < argc, "missing value for ", arg);
        return argv[++i];
      };
      if (arg == "--preload") {
        const std::string spec = next();
        const std::size_t eq = spec.find('=');
        MTK_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < spec.size(),
                  "--preload expects NAME=PATH, got '", spec, "'");
        preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      } else if (arg == "--backend") {
        const std::string b = next();
        if (b == "coo") {
          backend = StorageFormat::kCoo;
        } else if (b == "csf") {
          backend = StorageFormat::kCsf;
        } else {
          MTK_CHECK(false, "unknown backend '", b, "' (expected coo|csf)");
        }
      } else if (arg == "--workers") {
        sopts.workers = std::stoi(next());
      } else if (arg == "--batch-window") {
        sopts.batch_window = std::stoi(next());
      } else if (arg == "--max-queue") {
        sopts.max_queue = static_cast<std::size_t>(std::stoul(next()));
      } else if (arg == "--staleness") {
        sopts.staleness_threshold = std::stod(next());
      } else if (arg == "--epsilon") {
        sopts.default_epsilon = std::stod(next());
      } else if (arg == "--admit-max-cost") {
        sopts.admit_max_cost = std::stod(next());
      } else if (arg == "--plan-procs") {
        sopts.plan_procs = std::stoi(next());
      } else if (arg == "--threads") {
        sopts.local_threads = std::stoi(next());
        MTK_CHECK(sopts.local_threads >= 1, "--threads must be >= 1");
      } else if (arg == "--deadline-ms") {
        sopts.default_deadline_ms = std::stod(next());
      } else if (arg == "--retries") {
        sopts.max_retries = std::stoi(next());
      } else if (arg == "--retry-backoff-ms") {
        sopts.retry_backoff_ms = std::stod(next());
      } else if (arg == "--shed-epsilon") {
        sopts.shed_epsilon = std::stod(next());
      } else if (arg == "--max-resident-bytes") {
        sopts.max_resident_bytes =
            static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--max-line-bytes") {
        sopts.max_line_bytes = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--chaos") {
        const FaultSchedule schedule = parse_fault_schedule_arg(next());
        std::fprintf(stderr, "chaos          : %s\n",
                     schedule.describe().c_str());
        sopts.chaos = std::make_shared<const FaultInjector>(schedule);
      } else if (arg == "--cache-file") {
        cache_path = next();
      } else if (arg == "--calibrate") {
        run_calibrate = true;
      } else if (arg == "--script") {
        script_path = next();
      } else if (arg == "--trace-out") {
        trace_out = next();
      } else if (arg == "--metrics-json") {
        metrics_json = next();
      } else if (arg == "--help" || arg == "-h") {
        usage(stdout);
        return 0;
      } else {
        std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
        usage(stderr);
        return 2;
      }
    }

#ifdef _OPENMP
    if (sopts.local_threads > 0) omp_set_num_threads(sopts.local_threads);
#endif

    // Persistent plan cache + calibration, shared with mttkrp_cli: warm
    // plans (and a measured machine) survive across server runs.
    Calibration cal;
    if (!cache_path.empty()) {
      if (PlanCache::global().load(cache_path, &cal)) {
        std::fprintf(stderr, "cache file     : %s (%zu plans%s)\n",
                     cache_path.c_str(), PlanCache::global().size(),
                     cal.measured ? ", calibrated" : "");
      } else {
        std::fprintf(stderr, "cache file     : %s (cold)\n",
                     cache_path.c_str());
      }
    }
    if (run_calibrate) {
      cal = calibrate_machine();
      print_calibration(cal, stderr);
    }
    sopts.machine = cal;

    TraceSession session;
    if (!trace_out.empty()) session.start();

    int rc = 0;
    {
      MttkrpServer server(sopts);
      for (const auto& preload : preloads) {
        SparseTensor x = load_tensor_tns(preload.second);
        auto v = server.registry().load(preload.first, std::move(x), backend);
        std::fprintf(stderr, "preloaded      : %s (%lld nonzeros, %s)\n",
                     preload.first.c_str(),
                     static_cast<long long>(v->total_nnz()),
                     to_string(v->backend));
      }
      std::fprintf(stderr,
                   "serving        : %d workers, batch window %d, "
                   "staleness %.3g, plan procs %d\n",
                   sopts.workers, sopts.batch_window,
                   sopts.staleness_threshold, sopts.plan_procs);

      std::FILE* in = stdin;
      if (!script_path.empty()) {
        in = std::fopen(script_path.c_str(), "r");
        MTK_CHECK(in != nullptr, "cannot open script ", script_path);
      }
      rc = server.run(in, stdout);
      if (in != stdin) std::fclose(in);

      std::fprintf(stderr,
                   "served         : %lld requests "
                   "(plan cache: %zu hits, %zu misses)\n",
                   static_cast<long long>(
                       MetricsRegistry::global()
                           .counter("mtk.serve.requests")
                           .value()),
                   PlanCache::global().hits(), PlanCache::global().misses());
    }  // joins workers before the trace session stops

    if (!cache_path.empty()) {
      if (!PlanCache::global().save(cache_path, &cal)) {
        std::fprintf(stderr, "warning: could not write plan cache %s\n",
                     cache_path.c_str());
      }
    }
    if (session.active()) {
      session.stop();
      if (session.write_chrome_trace_file(trace_out)) {
        std::fprintf(stderr, "trace          : %s\n", trace_out.c_str());
      } else {
        std::fprintf(stderr, "warning: could not write trace %s\n",
                     trace_out.c_str());
      }
    }
    if (!metrics_json.empty()) {
      if (MetricsRegistry::global().write_json_file(metrics_json)) {
        std::fprintf(stderr, "metrics        : %s\n", metrics_json.c_str());
      } else {
        std::fprintf(stderr, "warning: could not write metrics %s\n",
                     metrics_json.c_str());
      }
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
