// Tucker decomposition demo (ST-HOSVD) — the Section VII extension family.
// Compresses a synthetic low-multilinear-rank tensor plus noise and shows
// the error/compression trade-off across target ranks.
//
//   build/examples/tucker_demo
#include <cstdio>

#include "src/cp/tucker.hpp"
#include "src/support/rng.hpp"
#include "src/tensor/ttm.hpp"

int main() {
  using namespace mtk;

  // Ground truth: multilinear rank (4, 3, 5) in a 20x18x24 tensor + noise.
  Rng rng(31415);
  DenseTensor core = DenseTensor::random_normal({4, 3, 5}, rng);
  DenseTensor x = core;
  const shape_t dims{20, 18, 24};
  for (int k = 0; k < 3; ++k) {
    x = ttm(x, Matrix::random_normal(dims[static_cast<std::size_t>(k)],
                                     core.dim(k), rng),
            k);
  }
  const double scale =
      0.01 * x.frobenius_norm() / std::sqrt(static_cast<double>(x.size()));
  for (index_t i = 0; i < x.size(); ++i) x[i] += scale * rng.normal();

  std::printf("ST-HOSVD on a 20x18x24 tensor (true multilinear rank "
              "(4,3,5), 1%% noise)\n\n");
  std::printf("%-12s %14s %14s %12s\n", "ranks", "rel. error",
              "storage", "compression");

  const double norm_x = x.frobenius_norm();
  const double full = static_cast<double>(x.size());
  for (const shape_t& ranks :
       {shape_t{2, 2, 2}, shape_t{4, 3, 5}, shape_t{6, 5, 8},
        shape_t{10, 9, 12}}) {
    const TuckerModel model = st_hosvd(x, {.ranks = ranks});
    double storage = static_cast<double>(shape_size(ranks));
    for (int k = 0; k < 3; ++k) {
      storage += static_cast<double>(dims[static_cast<std::size_t>(k)]) *
                 static_cast<double>(ranks[static_cast<std::size_t>(k)]);
    }
    std::printf("(%lld,%lld,%lld)%*s %14.6f %14.0f %11.1fx\n",
                static_cast<long long>(ranks[0]),
                static_cast<long long>(ranks[1]),
                static_cast<long long>(ranks[2]),
                static_cast<int>(7 - 2 * (ranks[0] > 9)), "",
                tucker_residual_norm(x, model) / norm_x, storage,
                full / storage);
  }

  std::printf("\nReading: at the true rank the error drops to the noise\n"
              "floor (~0.01); larger ranks buy nothing, smaller ranks\n"
              "lose signal — the classic Tucker elbow.\n");
  return 0;
}
