// Walks through the two-level memory model: runs all four traced MTTKRP
// pipelines at a few fast-memory sizes and prints measured traffic against
// the Section IV bounds — the sequential story of the paper in one screen.
//
//   build/examples/memory_hierarchy
#include <cstdio>

#include "src/bounds/sequential_bounds.hpp"
#include "src/memsim/traced_mttkrp.hpp"
#include "src/mttkrp/mttkrp.hpp"

int main() {
  using namespace mtk;
  const shape_t dims{20, 20, 20};
  const index_t rank = 12;
  const int mode = 1;

  TraceProblem tp;
  tp.dims = dims;
  tp.rank = rank;
  tp.mode = mode;

  std::printf("Two-level memory model: 20^3 tensor, R = 12, mode = 1\n");
  std::printf("(words moved between fast and slow memory; LRU plus\n"
              "Belady-OPT for the blocked algorithm)\n\n");
  std::printf("%-7s %-3s %9s %9s %9s %9s %9s %9s %9s\n", "M", "b", "alg1",
              "alg2", "alg2OPT", "two_step", "matmul", "lower", "Eq21");

  for (index_t m : {120, 480, 1920, 7680}) {
    const index_t b = max_block_size(3, m);

    const MemoryStats alg1 = measure_traffic(
        m, ReplacementPolicy::kLru,
        [&](AccessSink& sink) { trace_unblocked(tp, sink); });
    const MemoryStats alg2 = measure_traffic(
        m, ReplacementPolicy::kLru,
        [&](AccessSink& sink) { trace_blocked(tp, b, sink); });
    RecordingSink rec;
    trace_blocked(tp, b, rec);
    const MemoryStats alg2_opt = simulate_optimal(m, rec.trace());
    const MemoryStats two = measure_traffic(
        m, ReplacementPolicy::kLru,
        [&](AccessSink& sink) { trace_two_step(tp, m, sink); });
    const MemoryStats mm = measure_traffic(
        m, ReplacementPolicy::kLru,
        [&](AccessSink& sink) { trace_matmul(tp, m, sink); });

    SeqProblem sp;
    sp.dims = dims;
    sp.rank = rank;
    sp.fast_memory = m;
    std::printf("%-7lld %-3lld %9lld %9lld %9lld %9lld %9lld %9.0f %9.0f\n",
                static_cast<long long>(m), static_cast<long long>(b),
                static_cast<long long>(alg1.traffic()),
                static_cast<long long>(alg2.traffic()),
                static_cast<long long>(alg2_opt.traffic()),
                static_cast<long long>(two.traffic()),
                static_cast<long long>(mm.traffic()), seq_lower_bound(sp),
                seq_upper_bound_blocked(sp, b));
  }

  std::printf("\nReading: alg2 sits between the lower bound and Eq. (21);\n"
              "OPT replacement can only shave a little off LRU — the\n"
              "bound is about the *algorithm*, not the replacement policy.\n");
  return 0;
}
