// Reproduces Figure 1 of the paper: a six-point subset F of the 4-way
// MTTKRP iteration space (N = 3, I_k = 15, R = 4), its projections onto the
// four data arrays, and the HBL bound of Lemma 4.1 evaluated with the
// optimal exponents of Lemma 4.2.
//
//   build/examples/projections_demo
#include <cstdio>

#include "src/bounds/hbl.hpp"

int main() {
  using namespace mtk;
  const int order = 3;

  // The paper's coordinates (one-based there, zero-based here):
  // a (5,1,1,1), b (3,3,15,1), c (7,10,2,2), d (4,14,11,3), e (11,2,2,4),
  // f (14,14,14,4).
  const char* names = "abcdef";
  const std::vector<multi_index_t> points{
      {4, 0, 0, 0},   {2, 2, 14, 0}, {6, 9, 1, 1},
      {3, 13, 10, 2}, {10, 1, 1, 3}, {13, 13, 13, 3}};
  std::set<multi_index_t> f(points.begin(), points.end());

  std::printf("Figure 1: subset F of the iteration space [15]^3 x [4]\n\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::printf("  %c = (%2lld, %2lld, %2lld, r=%lld)\n", names[i],
                static_cast<long long>(points[i][0]),
                static_cast<long long>(points[i][1]),
                static_cast<long long>(points[i][2]),
                static_cast<long long>(points[i][3]));
  }

  const auto projections = mttkrp_projections(order);
  const char* labels[] = {"phi_1 (A1: i1,r)", "phi_2 (A2: i2,r)",
                          "phi_3 (A3: i3,r)", "phi_4 (X: i1,i2,i3)"};
  std::printf("\nProjections (distinct array entries touched):\n");
  std::vector<index_t> sizes;
  for (std::size_t j = 0; j < projections.size(); ++j) {
    const auto image = project(f, projections[j]);
    sizes.push_back(static_cast<index_t>(image.size()));
    std::printf("  %-20s |phi(F)| = %zu\n", labels[j], image.size());
  }

  const auto s = mttkrp_optimal_exponents(order);
  std::printf("\nLemma 4.2 exponents s* = (1/3, 1/3, 1/3, 2/3); "
              "sum = %.4f = 2 - 1/N\n",
              s[0] + s[1] + s[2] + s[3]);
  const double bound = hbl_product_bound(sizes, s);
  std::printf("Lemma 4.1: |F| = %zu <= prod |phi_j(F)|^{s_j} = %.3f  %s\n",
              f.size(), bound, f.size() <= bound ? "(holds)" : "(VIOLATED)");

  // The same machinery, computed from scratch by the LP solver.
  const auto s_lp = hbl_exponents_lp(projections, order + 1);
  double lp_sum = 0.0;
  for (double v : s_lp) lp_sum += v;
  std::printf("\nSimplex-computed exponent sum: %.4f (matches closed form)\n",
              lp_sum);
  return 0;
}
