// Runs Algorithms 3 and 4 on the simulated 64-rank distributed machine,
// verifies the results against the sequential reference, and prints the
// per-phase communication breakdown next to the paper's bounds — a compact
// version of what bench_par_scaling sweeps.
//
//   build/examples/simulated_cluster
#include <cstdio>

#include "src/bounds/parallel_bounds.hpp"
#include "src/costmodel/grid_search.hpp"
#include "src/mttkrp/mttkrp.hpp"
#include "src/parsim/par_mttkrp.hpp"
#include "src/support/rng.hpp"

int main() {
  using namespace mtk;
  const shape_t dims{32, 32, 32};
  const index_t rank = 8;
  const int mode = 0;
  const int p = 64;

  Rng rng(3);
  const DenseTensor x = DenseTensor::random_normal(dims, rng);
  std::vector<Matrix> factors;
  for (index_t d : dims) factors.push_back(Matrix::random_normal(d, rank, rng));
  const Matrix reference = mttkrp_reference(x, factors, mode);

  std::printf("Simulated cluster: P = %d ranks, tensor 32^3, R = %lld\n\n",
              p, static_cast<long long>(rank));

  // --- Algorithm 3 (stationary tensor) on a 4x4x4 grid.
  {
    const ParMttkrpResult r =
        par_mttkrp_stationary(x, factors, mode, {4, 4, 4});
    std::printf("Algorithm 3, grid 4x4x4:\n");
    for (const PhaseRecord& phase : r.phases) {
      std::printf("  %-22s group=%2d  max words/rank = %lld\n",
                  phase.label.c_str(), phase.group_size,
                  static_cast<long long>(phase.max_words_one_rank));
    }
    std::printf("  bottleneck rank moved %lld words; result max|diff| = "
                "%.2e\n\n",
                static_cast<long long>(r.max_words_moved),
                max_abs_diff(r.b, reference));
  }

  // --- Algorithm 4 with the rank dimension split (P0 = 2).
  {
    const ParMttkrpResult r =
        par_mttkrp_general(x, factors, mode, {2, 4, 4, 2});
    std::printf("Algorithm 4, grid (P0=2, 4x4x2):\n");
    for (const PhaseRecord& phase : r.phases) {
      std::printf("  %-22s group=%2d  max words/rank = %lld\n",
                  phase.label.c_str(), phase.group_size,
                  static_cast<long long>(phase.max_words_one_rank));
    }
    std::printf("  bottleneck rank moved %lld words; result max|diff| = "
                "%.2e\n\n",
                static_cast<long long>(r.max_words_moved),
                max_abs_diff(r.b, reference));
  }

  // --- Bounds for context.
  ParProblem lb;
  lb.dims = dims;
  lb.rank = rank;
  lb.procs = p;
  std::printf("Lower bound (max of Theorems 4.2, 4.3): %.0f words\n",
              par_lower_bound(lb));

  CostProblem cp;
  cp.dims = dims;
  cp.rank = rank;
  const GridSearchResult best = optimal_stationary_grid(cp, p);
  std::printf("Eq. (14)-optimal grid for this problem: %lldx%lldx%lld\n",
              static_cast<long long>(best.grid[0]),
              static_cast<long long>(best.grid[1]),
              static_cast<long long>(best.grid[2]));
  return 0;
}
