// CP decomposition demo: the application MTTKRP bottlenecks (Section II-A).
// Builds a synthetic rank-5 tensor with noise, runs CP-ALS, and prints the
// fit trajectory. Swap the MTTKRP backend with one option to see the
// pluggability of the algorithms in src/mttkrp.
//
//   build/examples/cp_als_demo
#include <cstdio>

#include "src/cp/cp_als.hpp"
#include "src/support/rng.hpp"

int main() {
  using namespace mtk;

  // Ground-truth rank-5 model plus 2% noise.
  Rng rng(2024);
  const shape_t dims{30, 25, 20};
  const index_t true_rank = 5;
  std::vector<Matrix> truth;
  for (index_t d : dims) {
    truth.push_back(Matrix::random_uniform(d, true_rank, rng, 0.1, 1.0));
  }
  DenseTensor x = DenseTensor::from_cp(
      truth, std::vector<double>(static_cast<std::size_t>(true_rank), 1.0));
  const double scale =
      0.02 * x.frobenius_norm() / std::sqrt(static_cast<double>(x.size()));
  for (index_t i = 0; i < x.size(); ++i) x[i] += scale * rng.normal();

  std::printf("CP-ALS on a 30x25x20 tensor (true rank 5, 2%% noise)\n\n");

  CpAlsOptions opts;
  opts.rank = 5;
  opts.max_iterations = 60;
  opts.tolerance = 1e-9;
  opts.mttkrp.algo = MttkrpAlgo::kBlocked;  // the communication-optimal one

  const CpAlsResult result = cp_als(x, opts);

  std::printf("%-6s %12s %14s\n", "iter", "fit", "change");
  for (const CpAlsIterate& it : result.trace) {
    if (it.iteration <= 5 || it.iteration % 10 == 0 ||
        it.iteration == result.iterations) {
      std::printf("%-6d %12.8f %14.3e\n", it.iteration, it.fit,
                  it.fit_change);
    }
  }
  std::printf("\n%s after %d iterations, final fit %.6f\n",
              result.converged ? "Converged" : "Stopped", result.iterations,
              result.final_fit);

  // The recovered lambda weights, sorted by magnitude, should be ~equal
  // since the ground truth used unit weights.
  std::printf("lambda:");
  for (double l : result.model.lambda) std::printf(" %.3f", l);
  std::printf("\n");
  return 0;
}
