// Configurable strong-scaling model: the Figure 4 generator with
// user-chosen problem sizes, for exploring other regimes than the paper's
// I = 2^45, R = 2^15 configuration.
//
//   build/examples/strong_scaling_model [log2_dim log2_rank max_log2_p]
//   e.g. build/examples/strong_scaling_model 10 5 20
#include <cstdio>
#include <cstdlib>

#include "src/costmodel/model.hpp"

int main(int argc, char** argv) {
  using namespace mtk;
  int log2_dim = 15, log2_rank = 15, max_log2_p = 30;
  if (argc >= 3) {
    log2_dim = std::atoi(argv[1]);
    log2_rank = std::atoi(argv[2]);
  }
  if (argc >= 4) max_log2_p = std::atoi(argv[3]);
  if (log2_dim < 1 || log2_dim > 20 || log2_rank < 0 || log2_rank > 20 ||
      max_log2_p < 0 || max_log2_p > 3 * log2_dim) {
    std::fprintf(stderr,
                 "usage: %s [log2_dim(1..20) log2_rank(0..20) "
                 "max_log2_p(<=3*log2_dim)]\n",
                 argv[0]);
    return 1;
  }

  ScalingModelConfig cfg;
  cfg.order = 3;
  cfg.dim_per_mode = index_t{1} << log2_dim;
  cfg.rank = index_t{1} << log2_rank;
  cfg.max_log2_procs = max_log2_p;

  std::printf("Strong-scaling model: I_k = 2^%d, R = 2^%d, P <= 2^%d\n\n",
              log2_dim, log2_rank, max_log2_p);
  print_scaling_table(strong_scaling_series(cfg));

  std::printf("\nColumns: CARMA matmul model, Algorithm 3 (Eq. 14 optimal\n"
              "grid), Algorithm 4 (Eq. 18), lower bound, and the matmul/\n"
              "Algorithm-4 ratio. All entries are words per processor.\n");
  return 0;
}
