// Quickstart: build a dense tensor, run MTTKRP with every algorithm, and
// check they agree. This is the 60-second tour of the core API.
//
//   build/examples/quickstart
#include <chrono>
#include <cstdio>

#include "src/mttkrp/mttkrp.hpp"
#include "src/support/rng.hpp"

int main() {
  using namespace mtk;

  // 1. A random 64 x 48 x 32 tensor and three factor matrices of rank 16.
  Rng rng(1);
  const shape_t dims{64, 48, 32};
  const index_t rank = 16;
  const DenseTensor x = DenseTensor::random_normal(dims, rng);
  std::vector<Matrix> factors;
  for (index_t d : dims) {
    factors.push_back(Matrix::random_normal(d, rank, rng));
  }

  // 2. MTTKRP in mode 1: B(i_2, r) = sum_i X(i) A^(1)(i_1,r) A^(3)(i_3,r).
  //    factors[mode] is ignored — CP-ALS passes the factor being updated.
  const int mode = 1;

  std::printf("MTTKRP on a 64x48x32 tensor, R = 16, mode = %d\n\n", mode);
  std::printf("%-12s %12s %16s\n", "algorithm", "time (us)", "max |diff|");

  Matrix reference;
  for (MttkrpAlgo algo : {MttkrpAlgo::kReference, MttkrpAlgo::kBlocked,
                          MttkrpAlgo::kMatmul, MttkrpAlgo::kTwoStep}) {
    MttkrpOptions opts;
    opts.algo = algo;
    opts.fast_memory_words = 1 << 15;  // drives the automatic block size

    const auto start = std::chrono::steady_clock::now();
    const Matrix b = mttkrp(x, factors, mode, opts);
    const auto stop = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start).count();

    if (algo == MttkrpAlgo::kReference) {
      reference = b;
      std::printf("%-12s %12.0f %16s\n", to_string(algo), us, "(oracle)");
    } else {
      std::printf("%-12s %12.0f %16.2e\n", to_string(algo), us,
                  max_abs_diff(b, reference));
    }
  }

  std::printf("\nAll algorithms agree to floating-point accuracy.\n");
  std::printf("Blocked block size for M = 2^15 words: b = %lld (Eq. 11)\n",
              static_cast<long long>(max_block_size(3, 1 << 15)));
  return 0;
}
