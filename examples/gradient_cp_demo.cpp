// Gradient-based CP decomposition (the paper's second motivating
// application class): each iteration computes the gradient with respect to
// *all* factor matrices, so the MTTKRP for every mode is needed at once —
// the all-modes dimension-tree kernel computes them with ~N/2 x fewer
// multiplies than N separate MTTKRPs.
//
//   build/examples/gradient_cp_demo
#include <cstdio>

#include "src/cp/cp_gradient.hpp"
#include "src/mttkrp/dim_tree.hpp"
#include "src/support/rng.hpp"

int main() {
  using namespace mtk;

  Rng rng(555);
  const shape_t dims{16, 16, 16, 16};
  const index_t rank = 4;
  std::vector<Matrix> truth;
  for (index_t d : dims) {
    truth.push_back(Matrix::random_uniform(d, rank, rng, 0.1, 1.0));
  }
  const DenseTensor x = DenseTensor::from_cp(
      truth, std::vector<double>(static_cast<std::size_t>(rank), 1.0));

  std::printf("Gradient CP on a 16^4 tensor, rank %lld\n\n",
              static_cast<long long>(rank));

  // The kernel saving first: all-modes MTTKRP via the dimension tree.
  std::vector<Matrix> probe;
  for (index_t d : dims) probe.push_back(Matrix::random_normal(d, rank, rng));
  const AllModesResult tree = mttkrp_all_modes_tree(x, probe);
  const AllModesResult sep = mttkrp_all_modes_separate(x, probe);
  std::printf("all-modes MTTKRP multiplies: tree %lld vs separate %lld "
              "(%.2fx saved)\n\n",
              static_cast<long long>(tree.multiplies),
              static_cast<long long>(sep.multiplies),
              static_cast<double>(sep.multiplies) /
                  static_cast<double>(tree.multiplies));

  CpGradOptions opts;
  opts.rank = rank;
  opts.max_iterations = 80;
  opts.tolerance = 1e-6;
  const CpGradResult result = cp_gradient_descent(x, opts);

  std::printf("%-6s %14s %14s %10s\n", "iter", "objective", "|grad|",
              "step");
  for (const CpGradIterate& it : result.trace) {
    if (it.iteration <= 3 || it.iteration % 20 == 0 ||
        it.iteration == result.iterations) {
      std::printf("%-6d %14.6e %14.6e %10.4f\n", it.iteration, it.objective,
                  it.gradient_norm, it.step);
    }
  }
  std::printf("\n%s after %d iterations; final fit %.4f\n",
              result.converged ? "Converged" : "Stopped", result.iterations,
              result.final_fit);
  return 0;
}
