file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_model.dir/bench/bench_fig4_model.cpp.o"
  "CMakeFiles/bench_fig4_model.dir/bench/bench_fig4_model.cpp.o.d"
  "bench_fig4_model"
  "bench_fig4_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
