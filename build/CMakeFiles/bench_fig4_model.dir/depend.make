# Empty dependencies file for bench_fig4_model.
# This may be replaced when dependencies are built.
