file(REMOVE_RECURSE
  "CMakeFiles/test_khatri_rao.dir/tests/test_khatri_rao.cpp.o"
  "CMakeFiles/test_khatri_rao.dir/tests/test_khatri_rao.cpp.o.d"
  "test_khatri_rao"
  "test_khatri_rao.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_khatri_rao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
