# Empty dependencies file for test_khatri_rao.
# This may be replaced when dependencies are built.
