file(REMOVE_RECURSE
  "CMakeFiles/test_hbl.dir/tests/test_hbl.cpp.o"
  "CMakeFiles/test_hbl.dir/tests/test_hbl.cpp.o.d"
  "test_hbl"
  "test_hbl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hbl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
