# Empty dependencies file for test_hbl.
# This may be replaced when dependencies are built.
