# Empty dependencies file for test_trace_two_step.
# This may be replaced when dependencies are built.
