file(REMOVE_RECURSE
  "CMakeFiles/test_trace_two_step.dir/tests/test_trace_two_step.cpp.o"
  "CMakeFiles/test_trace_two_step.dir/tests/test_trace_two_step.cpp.o.d"
  "test_trace_two_step"
  "test_trace_two_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_two_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
