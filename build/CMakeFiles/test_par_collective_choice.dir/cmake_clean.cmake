file(REMOVE_RECURSE
  "CMakeFiles/test_par_collective_choice.dir/tests/test_par_collective_choice.cpp.o"
  "CMakeFiles/test_par_collective_choice.dir/tests/test_par_collective_choice.cpp.o.d"
  "test_par_collective_choice"
  "test_par_collective_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_collective_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
