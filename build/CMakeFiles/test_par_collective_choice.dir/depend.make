# Empty dependencies file for test_par_collective_choice.
# This may be replaced when dependencies are built.
