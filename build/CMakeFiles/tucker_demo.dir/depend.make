# Empty dependencies file for tucker_demo.
# This may be replaced when dependencies are built.
