file(REMOVE_RECURSE
  "CMakeFiles/tucker_demo.dir/examples/tucker_demo.cpp.o"
  "CMakeFiles/tucker_demo.dir/examples/tucker_demo.cpp.o.d"
  "tucker_demo"
  "tucker_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tucker_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
