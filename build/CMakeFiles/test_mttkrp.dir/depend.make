# Empty dependencies file for test_mttkrp.
# This may be replaced when dependencies are built.
