file(REMOVE_RECURSE
  "CMakeFiles/test_par_multi_mttkrp.dir/tests/test_par_multi_mttkrp.cpp.o"
  "CMakeFiles/test_par_multi_mttkrp.dir/tests/test_par_multi_mttkrp.cpp.o.d"
  "test_par_multi_mttkrp"
  "test_par_multi_mttkrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_multi_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
