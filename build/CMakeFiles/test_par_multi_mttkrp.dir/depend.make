# Empty dependencies file for test_par_multi_mttkrp.
# This may be replaced when dependencies are built.
