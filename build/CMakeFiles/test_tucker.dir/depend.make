# Empty dependencies file for test_tucker.
# This may be replaced when dependencies are built.
