file(REMOVE_RECURSE
  "CMakeFiles/test_tucker.dir/tests/test_tucker.cpp.o"
  "CMakeFiles/test_tucker.dir/tests/test_tucker.cpp.o.d"
  "test_tucker"
  "test_tucker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tucker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
