# Empty dependencies file for test_blocked_rect.
# This may be replaced when dependencies are built.
