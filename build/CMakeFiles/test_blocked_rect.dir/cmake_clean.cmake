file(REMOVE_RECURSE
  "CMakeFiles/test_blocked_rect.dir/tests/test_blocked_rect.cpp.o"
  "CMakeFiles/test_blocked_rect.dir/tests/test_blocked_rect.cpp.o.d"
  "test_blocked_rect"
  "test_blocked_rect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocked_rect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
