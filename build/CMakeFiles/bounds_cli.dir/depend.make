# Empty dependencies file for bounds_cli.
# This may be replaced when dependencies are built.
