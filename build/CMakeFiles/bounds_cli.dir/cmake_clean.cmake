file(REMOVE_RECURSE
  "CMakeFiles/bounds_cli.dir/tools/bounds_cli.cpp.o"
  "CMakeFiles/bounds_cli.dir/tools/bounds_cli.cpp.o.d"
  "bounds_cli"
  "bounds_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
