file(REMOVE_RECURSE
  "CMakeFiles/test_collective_variants.dir/tests/test_collective_variants.cpp.o"
  "CMakeFiles/test_collective_variants.dir/tests/test_collective_variants.cpp.o.d"
  "test_collective_variants"
  "test_collective_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collective_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
