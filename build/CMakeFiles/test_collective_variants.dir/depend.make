# Empty dependencies file for test_collective_variants.
# This may be replaced when dependencies are built.
