# Empty dependencies file for projections_demo.
# This may be replaced when dependencies are built.
