file(REMOVE_RECURSE
  "CMakeFiles/projections_demo.dir/examples/projections_demo.cpp.o"
  "CMakeFiles/projections_demo.dir/examples/projections_demo.cpp.o.d"
  "projections_demo"
  "projections_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projections_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
