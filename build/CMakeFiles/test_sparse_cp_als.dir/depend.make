# Empty dependencies file for test_sparse_cp_als.
# This may be replaced when dependencies are built.
