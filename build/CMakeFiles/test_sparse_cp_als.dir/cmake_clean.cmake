file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_cp_als.dir/tests/test_sparse_cp_als.cpp.o"
  "CMakeFiles/test_sparse_cp_als.dir/tests/test_sparse_cp_als.cpp.o.d"
  "test_sparse_cp_als"
  "test_sparse_cp_als.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_cp_als.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
