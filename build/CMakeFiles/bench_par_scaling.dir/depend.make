# Empty dependencies file for bench_par_scaling.
# This may be replaced when dependencies are built.
