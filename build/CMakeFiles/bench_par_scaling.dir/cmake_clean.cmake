file(REMOVE_RECURSE
  "CMakeFiles/bench_par_scaling.dir/bench/bench_par_scaling.cpp.o"
  "CMakeFiles/bench_par_scaling.dir/bench/bench_par_scaling.cpp.o.d"
  "bench_par_scaling"
  "bench_par_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_par_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
