# Empty dependencies file for bench_multi_mode.
# This may be replaced when dependencies are built.
