file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_mode.dir/bench/bench_multi_mode.cpp.o"
  "CMakeFiles/bench_multi_mode.dir/bench/bench_multi_mode.cpp.o.d"
  "bench_multi_mode"
  "bench_multi_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
