# Empty dependencies file for mtk.
# This may be replaced when dependencies are built.
