file(REMOVE_RECURSE
  "libmtk.a"
)
