
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounds/hbl.cpp" "CMakeFiles/mtk.dir/src/bounds/hbl.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/bounds/hbl.cpp.o.d"
  "/root/repo/src/bounds/optimality.cpp" "CMakeFiles/mtk.dir/src/bounds/optimality.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/bounds/optimality.cpp.o.d"
  "/root/repo/src/bounds/parallel_bounds.cpp" "CMakeFiles/mtk.dir/src/bounds/parallel_bounds.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/bounds/parallel_bounds.cpp.o.d"
  "/root/repo/src/bounds/sequential_bounds.cpp" "CMakeFiles/mtk.dir/src/bounds/sequential_bounds.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/bounds/sequential_bounds.cpp.o.d"
  "/root/repo/src/bounds/simplex.cpp" "CMakeFiles/mtk.dir/src/bounds/simplex.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/bounds/simplex.cpp.o.d"
  "/root/repo/src/costmodel/carma.cpp" "CMakeFiles/mtk.dir/src/costmodel/carma.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/costmodel/carma.cpp.o.d"
  "/root/repo/src/costmodel/grid_search.cpp" "CMakeFiles/mtk.dir/src/costmodel/grid_search.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/costmodel/grid_search.cpp.o.d"
  "/root/repo/src/costmodel/model.cpp" "CMakeFiles/mtk.dir/src/costmodel/model.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/costmodel/model.cpp.o.d"
  "/root/repo/src/cp/cp_als.cpp" "CMakeFiles/mtk.dir/src/cp/cp_als.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/cp/cp_als.cpp.o.d"
  "/root/repo/src/cp/cp_gradient.cpp" "CMakeFiles/mtk.dir/src/cp/cp_gradient.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/cp/cp_gradient.cpp.o.d"
  "/root/repo/src/cp/par_cp_als.cpp" "CMakeFiles/mtk.dir/src/cp/par_cp_als.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/cp/par_cp_als.cpp.o.d"
  "/root/repo/src/cp/tucker.cpp" "CMakeFiles/mtk.dir/src/cp/tucker.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/cp/tucker.cpp.o.d"
  "/root/repo/src/io/tensor_io.cpp" "CMakeFiles/mtk.dir/src/io/tensor_io.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/io/tensor_io.cpp.o.d"
  "/root/repo/src/memsim/memory_model.cpp" "CMakeFiles/mtk.dir/src/memsim/memory_model.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/memsim/memory_model.cpp.o.d"
  "/root/repo/src/memsim/traced_mttkrp.cpp" "CMakeFiles/mtk.dir/src/memsim/traced_mttkrp.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/memsim/traced_mttkrp.cpp.o.d"
  "/root/repo/src/mttkrp/blocked_rect.cpp" "CMakeFiles/mtk.dir/src/mttkrp/blocked_rect.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/mttkrp/blocked_rect.cpp.o.d"
  "/root/repo/src/mttkrp/dim_tree.cpp" "CMakeFiles/mtk.dir/src/mttkrp/dim_tree.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/mttkrp/dim_tree.cpp.o.d"
  "/root/repo/src/mttkrp/dispatch.cpp" "CMakeFiles/mtk.dir/src/mttkrp/dispatch.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/mttkrp/dispatch.cpp.o.d"
  "/root/repo/src/mttkrp/mttkrp.cpp" "CMakeFiles/mtk.dir/src/mttkrp/mttkrp.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/mttkrp/mttkrp.cpp.o.d"
  "/root/repo/src/mttkrp/partial.cpp" "CMakeFiles/mtk.dir/src/mttkrp/partial.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/mttkrp/partial.cpp.o.d"
  "/root/repo/src/parsim/collective_variants.cpp" "CMakeFiles/mtk.dir/src/parsim/collective_variants.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/parsim/collective_variants.cpp.o.d"
  "/root/repo/src/parsim/collectives.cpp" "CMakeFiles/mtk.dir/src/parsim/collectives.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/parsim/collectives.cpp.o.d"
  "/root/repo/src/parsim/distribution.cpp" "CMakeFiles/mtk.dir/src/parsim/distribution.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/parsim/distribution.cpp.o.d"
  "/root/repo/src/parsim/grid.cpp" "CMakeFiles/mtk.dir/src/parsim/grid.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/parsim/grid.cpp.o.d"
  "/root/repo/src/parsim/machine.cpp" "CMakeFiles/mtk.dir/src/parsim/machine.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/parsim/machine.cpp.o.d"
  "/root/repo/src/parsim/par_mttkrp.cpp" "CMakeFiles/mtk.dir/src/parsim/par_mttkrp.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/parsim/par_mttkrp.cpp.o.d"
  "/root/repo/src/parsim/par_multi_mttkrp.cpp" "CMakeFiles/mtk.dir/src/parsim/par_multi_mttkrp.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/parsim/par_multi_mttkrp.cpp.o.d"
  "/root/repo/src/support/index.cpp" "CMakeFiles/mtk.dir/src/support/index.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/support/index.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "CMakeFiles/mtk.dir/src/support/rng.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/support/rng.cpp.o.d"
  "/root/repo/src/tensor/block.cpp" "CMakeFiles/mtk.dir/src/tensor/block.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/tensor/block.cpp.o.d"
  "/root/repo/src/tensor/csf.cpp" "CMakeFiles/mtk.dir/src/tensor/csf.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/tensor/csf.cpp.o.d"
  "/root/repo/src/tensor/dense_tensor.cpp" "CMakeFiles/mtk.dir/src/tensor/dense_tensor.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/tensor/dense_tensor.cpp.o.d"
  "/root/repo/src/tensor/eigen_sym.cpp" "CMakeFiles/mtk.dir/src/tensor/eigen_sym.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/tensor/eigen_sym.cpp.o.d"
  "/root/repo/src/tensor/khatri_rao.cpp" "CMakeFiles/mtk.dir/src/tensor/khatri_rao.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/tensor/khatri_rao.cpp.o.d"
  "/root/repo/src/tensor/matricize.cpp" "CMakeFiles/mtk.dir/src/tensor/matricize.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/tensor/matricize.cpp.o.d"
  "/root/repo/src/tensor/matrix.cpp" "CMakeFiles/mtk.dir/src/tensor/matrix.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/tensor/matrix.cpp.o.d"
  "/root/repo/src/tensor/sparse_tensor.cpp" "CMakeFiles/mtk.dir/src/tensor/sparse_tensor.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/tensor/sparse_tensor.cpp.o.d"
  "/root/repo/src/tensor/ttm.cpp" "CMakeFiles/mtk.dir/src/tensor/ttm.cpp.o" "gcc" "CMakeFiles/mtk.dir/src/tensor/ttm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
