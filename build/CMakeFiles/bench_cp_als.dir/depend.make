# Empty dependencies file for bench_cp_als.
# This may be replaced when dependencies are built.
