file(REMOVE_RECURSE
  "CMakeFiles/bench_cp_als.dir/bench/bench_cp_als.cpp.o"
  "CMakeFiles/bench_cp_als.dir/bench/bench_cp_als.cpp.o.d"
  "bench_cp_als"
  "bench_cp_als.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cp_als.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
