file(REMOVE_RECURSE
  "CMakeFiles/test_cp_gradient.dir/tests/test_cp_gradient.cpp.o"
  "CMakeFiles/test_cp_gradient.dir/tests/test_cp_gradient.cpp.o.d"
  "test_cp_gradient"
  "test_cp_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cp_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
