# Empty dependencies file for test_cp_gradient.
# This may be replaced when dependencies are built.
