file(REMOVE_RECURSE
  "CMakeFiles/bench_sparse_mttkrp.dir/bench/bench_sparse_mttkrp.cpp.o"
  "CMakeFiles/bench_sparse_mttkrp.dir/bench/bench_sparse_mttkrp.cpp.o.d"
  "bench_sparse_mttkrp"
  "bench_sparse_mttkrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparse_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
