# Empty dependencies file for bench_sparse_mttkrp.
# This may be replaced when dependencies are built.
