# Empty dependencies file for test_sparse_mttkrp.
# This may be replaced when dependencies are built.
