file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_mttkrp.dir/tests/test_sparse_mttkrp.cpp.o"
  "CMakeFiles/test_sparse_mttkrp.dir/tests/test_sparse_mttkrp.cpp.o.d"
  "test_sparse_mttkrp"
  "test_sparse_mttkrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
