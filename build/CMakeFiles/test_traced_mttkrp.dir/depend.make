# Empty dependencies file for test_traced_mttkrp.
# This may be replaced when dependencies are built.
