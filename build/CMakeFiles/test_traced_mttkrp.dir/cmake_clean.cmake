file(REMOVE_RECURSE
  "CMakeFiles/test_traced_mttkrp.dir/tests/test_traced_mttkrp.cpp.o"
  "CMakeFiles/test_traced_mttkrp.dir/tests/test_traced_mttkrp.cpp.o.d"
  "test_traced_mttkrp"
  "test_traced_mttkrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traced_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
