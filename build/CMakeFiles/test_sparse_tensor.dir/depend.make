# Empty dependencies file for test_sparse_tensor.
# This may be replaced when dependencies are built.
