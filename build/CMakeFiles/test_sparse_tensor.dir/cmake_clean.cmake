file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_tensor.dir/tests/test_sparse_tensor.cpp.o"
  "CMakeFiles/test_sparse_tensor.dir/tests/test_sparse_tensor.cpp.o.d"
  "test_sparse_tensor"
  "test_sparse_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
