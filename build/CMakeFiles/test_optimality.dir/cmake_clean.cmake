file(REMOVE_RECURSE
  "CMakeFiles/test_optimality.dir/tests/test_optimality.cpp.o"
  "CMakeFiles/test_optimality.dir/tests/test_optimality.cpp.o.d"
  "test_optimality"
  "test_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
