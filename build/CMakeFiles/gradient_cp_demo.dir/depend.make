# Empty dependencies file for gradient_cp_demo.
# This may be replaced when dependencies are built.
