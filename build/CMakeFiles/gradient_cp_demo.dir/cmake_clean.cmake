file(REMOVE_RECURSE
  "CMakeFiles/gradient_cp_demo.dir/examples/gradient_cp_demo.cpp.o"
  "CMakeFiles/gradient_cp_demo.dir/examples/gradient_cp_demo.cpp.o.d"
  "gradient_cp_demo"
  "gradient_cp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradient_cp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
