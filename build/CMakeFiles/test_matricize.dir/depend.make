# Empty dependencies file for test_matricize.
# This may be replaced when dependencies are built.
