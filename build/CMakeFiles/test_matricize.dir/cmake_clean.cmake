file(REMOVE_RECURSE
  "CMakeFiles/test_matricize.dir/tests/test_matricize.cpp.o"
  "CMakeFiles/test_matricize.dir/tests/test_matricize.cpp.o.d"
  "test_matricize"
  "test_matricize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matricize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
