# Empty dependencies file for bench_grid_ablation.
# This may be replaced when dependencies are built.
