file(REMOVE_RECURSE
  "CMakeFiles/bench_grid_ablation.dir/bench/bench_grid_ablation.cpp.o"
  "CMakeFiles/bench_grid_ablation.dir/bench/bench_grid_ablation.cpp.o.d"
  "bench_grid_ablation"
  "bench_grid_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
