# Empty dependencies file for mttkrp_cli.
# This may be replaced when dependencies are built.
