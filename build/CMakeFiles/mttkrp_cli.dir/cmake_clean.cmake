file(REMOVE_RECURSE
  "CMakeFiles/mttkrp_cli.dir/tools/mttkrp_cli.cpp.o"
  "CMakeFiles/mttkrp_cli.dir/tools/mttkrp_cli.cpp.o.d"
  "mttkrp_cli"
  "mttkrp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mttkrp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
