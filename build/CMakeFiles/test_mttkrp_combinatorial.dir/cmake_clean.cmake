file(REMOVE_RECURSE
  "CMakeFiles/test_mttkrp_combinatorial.dir/tests/test_mttkrp_combinatorial.cpp.o"
  "CMakeFiles/test_mttkrp_combinatorial.dir/tests/test_mttkrp_combinatorial.cpp.o.d"
  "test_mttkrp_combinatorial"
  "test_mttkrp_combinatorial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mttkrp_combinatorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
