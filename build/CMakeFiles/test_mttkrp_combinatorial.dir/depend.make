# Empty dependencies file for test_mttkrp_combinatorial.
# This may be replaced when dependencies are built.
