# Empty dependencies file for test_par_mttkrp.
# This may be replaced when dependencies are built.
