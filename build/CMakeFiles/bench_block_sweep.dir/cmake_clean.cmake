file(REMOVE_RECURSE
  "CMakeFiles/bench_block_sweep.dir/bench/bench_block_sweep.cpp.o"
  "CMakeFiles/bench_block_sweep.dir/bench/bench_block_sweep.cpp.o.d"
  "bench_block_sweep"
  "bench_block_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
