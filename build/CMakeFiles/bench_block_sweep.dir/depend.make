# Empty dependencies file for bench_block_sweep.
# This may be replaced when dependencies are built.
