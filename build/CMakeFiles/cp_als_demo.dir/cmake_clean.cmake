file(REMOVE_RECURSE
  "CMakeFiles/cp_als_demo.dir/examples/cp_als_demo.cpp.o"
  "CMakeFiles/cp_als_demo.dir/examples/cp_als_demo.cpp.o.d"
  "cp_als_demo"
  "cp_als_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_als_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
