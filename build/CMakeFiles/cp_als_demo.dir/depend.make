# Empty dependencies file for cp_als_demo.
# This may be replaced when dependencies are built.
