# Empty dependencies file for bench_seq_kernels.
# This may be replaced when dependencies are built.
