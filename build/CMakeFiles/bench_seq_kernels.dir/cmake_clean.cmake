file(REMOVE_RECURSE
  "CMakeFiles/bench_seq_kernels.dir/bench/bench_seq_kernels.cpp.o"
  "CMakeFiles/bench_seq_kernels.dir/bench/bench_seq_kernels.cpp.o.d"
  "bench_seq_kernels"
  "bench_seq_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seq_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
