file(REMOVE_RECURSE
  "CMakeFiles/test_bounds_properties.dir/tests/test_bounds_properties.cpp.o"
  "CMakeFiles/test_bounds_properties.dir/tests/test_bounds_properties.cpp.o.d"
  "test_bounds_properties"
  "test_bounds_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounds_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
