# Empty dependencies file for test_bounds_properties.
# This may be replaced when dependencies are built.
