file(REMOVE_RECURSE
  "CMakeFiles/simulated_cluster.dir/examples/simulated_cluster.cpp.o"
  "CMakeFiles/simulated_cluster.dir/examples/simulated_cluster.cpp.o.d"
  "simulated_cluster"
  "simulated_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulated_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
