# Empty dependencies file for simulated_cluster.
# This may be replaced when dependencies are built.
