file(REMOVE_RECURSE
  "CMakeFiles/test_memsim_properties.dir/tests/test_memsim_properties.cpp.o"
  "CMakeFiles/test_memsim_properties.dir/tests/test_memsim_properties.cpp.o.d"
  "test_memsim_properties"
  "test_memsim_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
