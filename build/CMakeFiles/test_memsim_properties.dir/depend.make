# Empty dependencies file for test_memsim_properties.
# This may be replaced when dependencies are built.
