# Empty dependencies file for test_dim_tree.
# This may be replaced when dependencies are built.
