file(REMOVE_RECURSE
  "CMakeFiles/test_dim_tree.dir/tests/test_dim_tree.cpp.o"
  "CMakeFiles/test_dim_tree.dir/tests/test_dim_tree.cpp.o.d"
  "test_dim_tree"
  "test_dim_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dim_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
