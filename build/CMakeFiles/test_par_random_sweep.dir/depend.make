# Empty dependencies file for test_par_random_sweep.
# This may be replaced when dependencies are built.
