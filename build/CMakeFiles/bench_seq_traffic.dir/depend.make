# Empty dependencies file for bench_seq_traffic.
# This may be replaced when dependencies are built.
