file(REMOVE_RECURSE
  "CMakeFiles/bench_seq_traffic.dir/bench/bench_seq_traffic.cpp.o"
  "CMakeFiles/bench_seq_traffic.dir/bench/bench_seq_traffic.cpp.o.d"
  "bench_seq_traffic"
  "bench_seq_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seq_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
