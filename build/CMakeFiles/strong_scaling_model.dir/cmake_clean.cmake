file(REMOVE_RECURSE
  "CMakeFiles/strong_scaling_model.dir/examples/strong_scaling_model.cpp.o"
  "CMakeFiles/strong_scaling_model.dir/examples/strong_scaling_model.cpp.o.d"
  "strong_scaling_model"
  "strong_scaling_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strong_scaling_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
