# Empty dependencies file for strong_scaling_model.
# This may be replaced when dependencies are built.
